package scenario

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/faults"
	"repro/internal/workload"
)

// full exercises every directive the grammar has.
const full = `
# every directive at once
workload trace
days 3
step 10m
seed 42
mean 0.45
peak 0.9
noise 0.02
sharpness 1.5
damping 0.4
sample 0s 0.3
sample 12h 0.7
sample 3d 0.4
add spike 6h ramp 1h peak 0.2 hold 2h
mul surge 1d ramp 30m factor 1.8 hold 1h
mul season period 3d amp 0.1
add season period 1d amp -0.05
fleet 1U=4,nowax:2U=3,OCP=2
balance thermal
autoscale hysteresis
fault 12h chiller-trip for 45m
fault 1d2h rack 1 fan-degrade 0.5 for 4h
fault 2d class 2 capacity-loss 0.25 for 6h
`

func TestParseEveryDirective(t *testing.T) {
	spec, err := ParseString(full)
	if err != nil {
		t.Fatal(err)
	}
	g := spec.Gen
	if g.Pattern != workload.PatternTrace || g.Days != 3 || g.StepS != 600 || g.Seed != 42 {
		t.Errorf("base directives mis-parsed: %+v", g)
	}
	if g.MeanUtil != 0.45 || g.PeakUtil != 0.9 || g.NoiseAmp != 0.02 ||
		g.PeakSharpness != 1.5 || g.WeekendDamping != 0.4 {
		t.Errorf("normalization directives mis-parsed: %+v", g)
	}
	if len(g.Samples) != 3 || g.Samples[1] != (workload.Sample{AtS: 12 * 3600, Util: 0.7}) {
		t.Errorf("samples mis-parsed: %+v", g.Samples)
	}
	wantComps := []workload.Component{
		{Op: workload.OpAdd, Kind: workload.CompSpike, AtS: 6 * 3600, RampS: 3600, HoldS: 2 * 3600, Value: 0.2},
		{Op: workload.OpMul, Kind: workload.CompSurge, AtS: 86400, RampS: 1800, HoldS: 3600, Value: 1.8},
		{Op: workload.OpMul, Kind: workload.CompSeason, PeriodS: 3 * 86400, Value: 0.1},
		{Op: workload.OpAdd, Kind: workload.CompSeason, PeriodS: 86400, Value: -0.05},
	}
	if !reflect.DeepEqual(g.Components, wantComps) {
		t.Errorf("components mis-parsed:\n got %+v\nwant %+v", g.Components, wantComps)
	}
	wantMix := []MixEntry{{Tag: "1U", Racks: 4}, {Tag: "2U", Racks: 3, NoWax: true}, {Tag: "OCP", Racks: 2}}
	if !reflect.DeepEqual(spec.Mix, wantMix) {
		t.Errorf("mix mis-parsed: %+v", spec.Mix)
	}
	if spec.Balance != "thermal" || spec.Autoscale != "hysteresis" {
		t.Errorf("policies mis-parsed: balance=%q autoscale=%q", spec.Balance, spec.Autoscale)
	}
	if spec.Faults == nil || spec.Faults.Len() != 6 {
		t.Fatalf("faults mis-parsed: %v", spec.Faults)
	}
	if evs := spec.Faults.Events(); evs[0].Kind != faults.ChillerTrip || evs[1].Kind != faults.ChillerRecover {
		t.Errorf("fault expansion mis-parsed: %v", spec.Faults.Events())
	}
}

func TestParseDefaults(t *testing.T) {
	spec, err := ParseString("workload diurnal\n")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(spec, Default()) {
		t.Errorf("minimal file != Default():\n got %+v\nwant %+v", spec, Default())
	}
}

// TestRoundTrip is the grammar's core contract: Parse(String(spec))
// reproduces spec exactly, for every corpus entry and the full-grammar
// exercise above.
func TestRoundTrip(t *testing.T) {
	sources := map[string]string{"full": full}
	for _, n := range Names() {
		b, err := NamedSource(n)
		if err != nil {
			t.Fatal(err)
		}
		sources[n] = string(b)
	}
	for name, src := range sources {
		spec, err := ParseString(src)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		text := spec.String()
		re, err := ParseString(text)
		if err != nil {
			t.Fatalf("%s: reparse canonical form: %v\n%s", name, err, text)
		}
		if !reflect.DeepEqual(re, spec) {
			t.Errorf("%s: Parse(String(spec)) != spec\ncanonical:\n%s", name, text)
		}
		if re.String() != text {
			t.Errorf("%s: String not a fixed point", name)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]struct{ in, want string }{
		"unknown directive":    {"bogus 1\n", "line 1: unknown directive \"bogus\""},
		"bad pattern":          {"workload sawtooth\n", "line 1: workload: unknown pattern"},
		"workload no arg":      {"workload\n", "line 1: workload needs a pattern name"},
		"duplicate directive":  {"days 2\ndays 3\n", "line 2: duplicate days directive"},
		"days not int":         {"days two\n", "line 1: bad days \"two\""},
		"days range":           {"days 0\n", "line 1: days 0 outside [1, 400]"},
		"step bad span":        {"step 5x\n", "line 1: bad step \"5x\""},
		"step range":           {"step 1s\n", "line 1: step 1s outside [30s, 6h]"},
		"seed bad":             {"seed pi\n", "line 1: bad seed \"pi\""},
		"mean bad":             {"mean x\n", "line 1: bad mean \"x\""},
		"mean no arg":          {"mean\n", "line 1: mean needs a number"},
		"sample arity":         {"sample 3h\n", "line 1: sample needs <time> <util>"},
		"sample bad time":      {"sample 3x 0.5\n", "line 1: bad sample time \"3x\""},
		"sample bad util":      {"sample 3h x\n", "line 1: bad sample util \"x\""},
		"sample out of order":  {"workload trace\nsample 3h 0.5\nsample 1h 0.5\n", "line 3: sample time 1h is before the previous sample's 3h"},
		"sample without trace": {"sample 0s 0.5\nsample 3h 0.5\n", "sample lines need \"workload trace\""},
		"component no kind":    {"add\n", "line 1: add needs a component kind"},
		"component bad kind":   {"add wobble 3h ramp 1h peak 0.2\n", "line 1: unknown component kind \"wobble\""},
		"spike arity":          {"add spike 3h ramp 1h\n", "line 1: want: add spike <time> ramp <span> peak <value> [hold <span>]"},
		"spike bad time":       {"add spike 3x ramp 1h peak 0.2\n", "line 1: bad spike time \"3x\""},
		"spike missing ramp":   {"add spike 3h rampp 1h peak 0.2\n", "line 1: expected \"ramp\", found \"rampp\""},
		"spike bad ramp":       {"add spike 3h ramp 1x peak 0.2\n", "line 1: bad ramp \"1x\""},
		"add wants peak":       {"add spike 3h ramp 1h factor 0.2\n", "line 1: expected \"peak\""},
		"mul wants factor":     {"mul surge 3h ramp 1h peak 1.5\n", "line 1: expected \"factor\""},
		"spike bad value":      {"add spike 3h ramp 1h peak x\n", "line 1: bad peak \"x\""},
		"spike missing hold":   {"add spike 3h ramp 1h peak 0.2 hodl 1h\n", "line 1: expected \"hold\", found \"hodl\""},
		"spike bad hold":       {"add spike 3h ramp 1h peak 0.2 hold 1x\n", "line 1: bad hold \"1x\""},
		"spike invalid":        {"add spike 3h ramp 0s peak 0.2\n", "positive ramp or hold"},
		"season arity":         {"mul season period 3d\n", "line 1: want: mul season period <span> amp <value>"},
		"season bad period":    {"mul season period 3x amp 0.1\n", "line 1: bad season period \"3x\""},
		"season bad amp":       {"mul season period 3d amp x\n", "line 1: bad season amp \"x\""},
		"fleet no arg":         {"fleet\n", "line 1: fleet needs a mix"},
		"fleet bad entry":      {"fleet 1U:13\n", "line 1: fleet mix entry \"1U:13\": want tag=racks"},
		"fleet bad tag":        {"fleet 4U=13\n", "line 1: fleet mix entry \"4U=13\": unknown class tag"},
		"fleet bad count":      {"fleet 1U=-2\n", "line 1: fleet mix entry \"1U=-2\": rack count must be a positive integer"},
		"fleet empty":          {"fleet ,\n", "line 1: empty fleet mix"},
		"balance no arg":       {"balance\n", "line 1: balance needs a policy name"},
		"balance unknown":      {"balance chaotic\n", "unknown balance policy \"chaotic\""},
		"autoscale unknown":    {"autoscale chaotic\n", "unknown autoscale policy \"chaotic\""},
		"fault no arg":         {"fault\n", "line 1: fault needs a faults-DSL event"},
		"fault bad line":       {"fault 3h exploded\n", "line 1: unknown fault kind \"exploded\""},
		"fault out of order":   {"fault 3h chiller-trip\nfault 1h chiller-recover\n", "line 2: fault time 1h is before the previous fault's 3h"},
		"fault duplicate":      {"fault 3h chiller-trip\nfault 3h chiller-trip\n", "duplicate"},
		"fault bad target":     {"fleet 1U=2\nfault 3h rack 99 fan-degrade 0.5\n", "rack 99"},
		"workload invalid":     {"mean 0.9\npeak 0.5\n", "workload: bad normalization"},
	}
	for name, tc := range cases {
		_, err := ParseString(tc.in)
		if err == nil {
			t.Errorf("%s: accepted %q", name, tc.in)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not contain %q", name, err, tc.want)
		}
	}
}

func TestValidate(t *testing.T) {
	good := Default()
	if err := good.Validate(); err != nil {
		t.Fatalf("Default() invalid: %v", err)
	}
	cases := map[string]func(*Spec){
		"empty mix":     func(s *Spec) { s.Mix = nil },
		"bad tag":       func(s *Spec) { s.Mix[0].Tag = "4U" },
		"bad racks":     func(s *Spec) { s.Mix[0].Racks = 0 },
		"bad balance":   func(s *Spec) { s.Balance = "chaotic" },
		"bad autoscale": func(s *Spec) { s.Autoscale = "chaotic" },
		"bad workload":  func(s *Spec) { s.Gen.MeanUtil = 2 },
		"fault offgrid": func(s *Spec) {
			sched, err := faults.ParseScheduleString("3h rack 999 fan-degrade 0.5")
			if err != nil {
				t.Fatal(err)
			}
			s.Faults = sched
		},
	}
	for name, mut := range cases {
		s := Default()
		mut(s)
		if err := s.Validate(); err == nil {
			t.Errorf("%s: Validate accepted bad spec", name)
		}
	}
}

func TestTotalRacks(t *testing.T) {
	if got := Default().TotalRacks(); got != 27 {
		t.Errorf("Default().TotalRacks() = %d, want 27", got)
	}
}

func TestParseComments(t *testing.T) {
	spec, err := ParseString("# leading comment\nworkload flat # trailing\n\n   \nmean 0.4\n")
	if err != nil {
		t.Fatal(err)
	}
	if spec.Gen.Pattern != workload.PatternFlat || spec.Gen.MeanUtil != 0.4 {
		t.Errorf("comments mis-handled: %+v", spec.Gen)
	}
}
