package scenario

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/faults"
	"repro/internal/workload"
)

// The grammar, one directive per line, `#` comments, blank lines ignored:
//
//	workload <diurnal|weekly|flat|trace>
//	days <n>
//	step <span>
//	seed <n>
//	mean <f>            peak <f>           noise <f>
//	sharpness <f>       damping <f>
//	sample <span> <util>                        (trace control points, time-ordered)
//	add spike <at> ramp <span> peak <f> [hold <span>]
//	mul spike <at> ramp <span> factor <f> [hold <span>]
//	add surge <at> ramp <span> peak <f> [hold <span>]
//	mul surge <at> ramp <span> factor <f> [hold <span>]
//	add season period <span> amp <f>
//	mul season period <span> amp <f>
//	fleet <tag=racks[,tag=racks...]>            (tags 1U/2U/OCP, nowax: prefix)
//	balance <roundrobin|leastloaded|thermal|faultaware>
//	autoscale <threshold|hysteresis|prefreeze>
//	fault <faults-DSL line>                     (time-ordered, internal/faults grammar)
//
// Scalar directives may appear at most once; omitted ones take the
// Default() values. Spans are the faults package's unit-suffixed grammar
// (90s, 45m, 12h30m, 1d2h).

// directiveList names every directive for unknown-directive errors.
const directiveList = "workload, days, step, seed, mean, peak, noise, sharpness, damping, sample, add, mul, fleet, balance, autoscale, fault"

// Parse reads the scenario format into a validated Spec.
func Parse(r io.Reader) (*Spec, error) {
	spec := Default()
	seen := map[string]bool{}
	var events []faults.Event
	lastSampleAt := -1.0
	lastFaultAt := 0.0
	haveFaults := false

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		bad := func(format string, args ...any) error {
			return fmt.Errorf("scenario: line %d: %s", lineNo, fmt.Sprintf(format, args...))
		}
		dir := fields[0]
		switch dir {
		case "workload", "days", "step", "seed", "mean", "peak", "noise",
			"sharpness", "damping", "fleet", "balance", "autoscale":
			if seen[dir] {
				return nil, bad("duplicate %s directive", dir)
			}
			seen[dir] = true
		}
		switch dir {
		case "workload":
			if len(fields) != 2 {
				return nil, bad("workload needs a pattern name")
			}
			p, err := workload.ParsePattern(fields[1])
			if err != nil {
				return nil, bad("%v", err)
			}
			spec.Gen.Pattern = p
		case "days":
			n, err := intField(fields, "days")
			if err != nil {
				return nil, bad("%v", err)
			}
			if n <= 0 || n > 400 {
				return nil, bad("days %d outside [1, 400]", n)
			}
			spec.Gen.Days = n
		case "step":
			v, err := spanField(fields, "step")
			if err != nil {
				return nil, bad("%v", err)
			}
			if v < 30 || v > 6*3600 {
				return nil, bad("step %s outside [30s, 6h]", faults.FormatSpan(v))
			}
			spec.Gen.StepS = v
		case "seed":
			if len(fields) != 2 {
				return nil, bad("seed needs an integer")
			}
			n, err := strconv.ParseInt(fields[1], 10, 64)
			if err != nil {
				return nil, bad("bad seed %q", fields[1])
			}
			spec.Gen.Seed = n
		case "mean", "peak", "noise", "sharpness", "damping":
			v, err := floatField(fields, dir)
			if err != nil {
				return nil, bad("%v", err)
			}
			switch dir {
			case "mean":
				spec.Gen.MeanUtil = v
			case "peak":
				spec.Gen.PeakUtil = v
			case "noise":
				spec.Gen.NoiseAmp = v
			case "sharpness":
				spec.Gen.PeakSharpness = v
			case "damping":
				spec.Gen.WeekendDamping = v
			}
		case "sample":
			if len(fields) != 3 {
				return nil, bad("sample needs <time> <util>")
			}
			at, err := faults.ParseSpan(fields[1])
			if err != nil {
				return nil, bad("bad sample time %q: %v", fields[1], err)
			}
			util, err := strconv.ParseFloat(fields[2], 64)
			if err != nil {
				return nil, bad("bad sample util %q", fields[2])
			}
			if at < lastSampleAt {
				return nil, bad("sample time %s is before the previous sample's %s (samples must be in time order)",
					faults.FormatSpan(at), faults.FormatSpan(lastSampleAt))
			}
			lastSampleAt = at
			spec.Gen.Samples = append(spec.Gen.Samples, workload.Sample{AtS: at, Util: util})
		case "add", "mul":
			c, err := parseComponent(fields)
			if err != nil {
				return nil, bad("%v", err)
			}
			spec.Gen.Components = append(spec.Gen.Components, c)
		case "fleet":
			if len(fields) != 2 {
				return nil, bad("fleet needs a mix like 1U=13,2U=10,OCP=4")
			}
			mix, err := parseMix(fields[1])
			if err != nil {
				return nil, bad("%v", err)
			}
			spec.Mix = mix
		case "balance":
			if len(fields) != 2 {
				return nil, bad("balance needs a policy name")
			}
			spec.Balance = fields[1]
		case "autoscale":
			if len(fields) != 2 {
				return nil, bad("autoscale needs a policy name")
			}
			spec.Autoscale = fields[1]
		case "fault":
			if len(fields) < 2 {
				return nil, bad("fault needs a faults-DSL event")
			}
			sub, err := faults.ParseScheduleString(strings.Join(fields[1:], " "))
			if err != nil {
				return nil, bad("%s", stripFaultsPrefix(err))
			}
			evs := sub.Events()
			if evs[0].AtS < lastFaultAt {
				return nil, bad("fault time %s is before the previous fault's %s (faults must be in time order)",
					faults.FormatSpan(evs[0].AtS), faults.FormatSpan(lastFaultAt))
			}
			lastFaultAt = evs[0].AtS
			haveFaults = true
			events = append(events, evs...)
		default:
			return nil, bad("unknown directive %q (want one of %s)", dir, directiveList)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("scenario: read: %w", err)
	}

	if haveFaults {
		sched, err := faults.NewSchedule(events)
		if err != nil {
			return nil, fmt.Errorf("scenario: %s", stripFaultsPrefix(err))
		}
		spec.Faults = sched
	}
	if len(spec.Gen.Samples) > 0 && spec.Gen.Pattern != workload.PatternTrace {
		return nil, fmt.Errorf("scenario: sample lines need \"workload trace\", have %q", spec.Gen.Pattern.String())
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return spec, nil
}

// ParseString is Parse over a string.
func ParseString(s string) (*Spec, error) {
	return Parse(strings.NewReader(s))
}

// parseComponent parses an `add`/`mul` directive's fields.
func parseComponent(fields []string) (workload.Component, error) {
	var c workload.Component
	if fields[0] == "mul" {
		c.Op = workload.OpMul
	}
	if len(fields) < 2 {
		return c, fmt.Errorf("%s needs a component kind (spike, surge or season)", fields[0])
	}
	valueWord := "peak"
	if c.Op == workload.OpMul {
		valueWord = "factor"
	}
	switch fields[1] {
	case "season":
		// add|mul season period <span> amp <f>
		if len(fields) != 6 || fields[2] != "period" || fields[4] != "amp" {
			return c, fmt.Errorf("want: %s season period <span> amp <value>", fields[0])
		}
		c.Kind = workload.CompSeason
		var err error
		if c.PeriodS, err = faults.ParseSpan(fields[3]); err != nil {
			return c, fmt.Errorf("bad season period %q: %v", fields[3], err)
		}
		if c.Value, err = strconv.ParseFloat(fields[5], 64); err != nil {
			return c, fmt.Errorf("bad season amp %q", fields[5])
		}
	case "spike", "surge":
		// add|mul spike|surge <at> ramp <span> peak|factor <f> [hold <span>]
		c.Kind = workload.CompSpike
		if fields[1] == "surge" {
			c.Kind = workload.CompSurge
		}
		if len(fields) != 7 && len(fields) != 9 {
			return c, fmt.Errorf("want: %s %s <time> ramp <span> %s <value> [hold <span>]",
				fields[0], fields[1], valueWord)
		}
		var err error
		if c.AtS, err = faults.ParseSpan(fields[2]); err != nil {
			return c, fmt.Errorf("bad %s time %q: %v", fields[1], fields[2], err)
		}
		if fields[3] != "ramp" {
			return c, fmt.Errorf("expected \"ramp\", found %q", fields[3])
		}
		if c.RampS, err = faults.ParseSpan(fields[4]); err != nil {
			return c, fmt.Errorf("bad ramp %q: %v", fields[4], err)
		}
		if fields[5] != valueWord {
			return c, fmt.Errorf("expected %q (an %s component's amplitude word), found %q",
				valueWord, fields[0], fields[5])
		}
		if c.Value, err = strconv.ParseFloat(fields[6], 64); err != nil {
			return c, fmt.Errorf("bad %s %q", valueWord, fields[6])
		}
		if len(fields) == 9 {
			if fields[7] != "hold" {
				return c, fmt.Errorf("expected \"hold\", found %q", fields[7])
			}
			if c.HoldS, err = faults.ParseSpan(fields[8]); err != nil {
				return c, fmt.Errorf("bad hold %q: %v", fields[8], err)
			}
		}
	default:
		return c, fmt.Errorf("unknown component kind %q (want spike, surge or season)", fields[1])
	}
	return c, nil
}

// parseMix parses the fleet directive's tag=racks list.
func parseMix(s string) ([]MixEntry, error) {
	var mix []MixEntry
	for _, part := range strings.Split(s, ",") {
		if part == "" {
			continue
		}
		tag, count, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("fleet mix entry %q: want tag=racks", part)
		}
		var m MixEntry
		if rest, found := strings.CutPrefix(strings.ToLower(tag), "nowax:"); found {
			m.NoWax = true
			tag = rest
		}
		canon, ok := canonicalTag(tag)
		if !ok {
			return nil, fmt.Errorf("fleet mix entry %q: unknown class tag (want 1U, 2U, OCP)", part)
		}
		m.Tag = canon
		n, err := strconv.Atoi(count)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("fleet mix entry %q: rack count must be a positive integer", part)
		}
		m.Racks = n
		mix = append(mix, m)
	}
	if len(mix) == 0 {
		return nil, fmt.Errorf("empty fleet mix %q", s)
	}
	return mix, nil
}

// intField parses a single-integer directive.
func intField(fields []string, name string) (int, error) {
	if len(fields) != 2 {
		return 0, fmt.Errorf("%s needs an integer", name)
	}
	n, err := strconv.Atoi(fields[1])
	if err != nil {
		return 0, fmt.Errorf("bad %s %q", name, fields[1])
	}
	return n, nil
}

// floatField parses a single-number directive.
func floatField(fields []string, name string) (float64, error) {
	if len(fields) != 2 {
		return 0, fmt.Errorf("%s needs a number", name)
	}
	v, err := strconv.ParseFloat(fields[1], 64)
	if err != nil {
		return 0, fmt.Errorf("bad %s %q", name, fields[1])
	}
	return v, nil
}

// spanField parses a single-span directive.
func spanField(fields []string, name string) (float64, error) {
	if len(fields) != 2 {
		return 0, fmt.Errorf("%s needs a time span", name)
	}
	v, err := faults.ParseSpan(fields[1])
	if err != nil {
		return 0, fmt.Errorf("bad %s %q: %v", name, fields[1], err)
	}
	return v, nil
}

// stripFaultsPrefix drops the faults package's own "faults: line 1:"
// context from an error that scenario re-wraps with the real line number.
func stripFaultsPrefix(err error) string {
	msg := err.Error()
	msg = strings.TrimPrefix(msg, "faults: line 1: ")
	return strings.TrimPrefix(msg, "faults: ")
}
