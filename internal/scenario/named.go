package scenario

import (
	"embed"
	"fmt"
	"sort"
	"strings"
)

// The named corpus: full experiment descriptions that ship with the
// simulator. The canonical copies live in corpus/*.scenario and are
// embedded into the binary, so the serving layer can accept a scenario
// by name without touching the filesystem (no path-traversal surface)
// and the CLI resolves names before falling back to file paths. The
// user-facing copies under examples/scenarios/ are pinned byte-for-byte
// to these by a test — edit both together. Every corpus entry is also
// pinned end-to-end through the serve layer's golden machinery, which is
// what makes the corpus a regression suite.

//go:embed corpus/*.scenario
var corpusFS embed.FS

const corpusDir = "corpus"

// Names lists the embedded scenario names, sorted.
func Names() []string {
	entries, err := corpusFS.ReadDir(corpusDir)
	if err != nil {
		return nil
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if n, ok := strings.CutSuffix(e.Name(), ".scenario"); ok {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	return names
}

// IsNamed reports whether name resolves to an embedded scenario.
func IsNamed(name string) bool {
	_, err := corpusFS.ReadFile(corpusDir + "/" + name + ".scenario")
	return err == nil
}

// NamedSource returns the raw text of an embedded scenario.
func NamedSource(name string) ([]byte, error) {
	b, err := corpusFS.ReadFile(corpusDir + "/" + name + ".scenario")
	if err != nil {
		return nil, fmt.Errorf("scenario: unknown scenario %q (want one of %s)",
			name, strings.Join(Names(), ", "))
	}
	return b, nil
}

// Named parses an embedded scenario into a Spec.
func Named(name string) (*Spec, error) {
	b, err := NamedSource(name)
	if err != nil {
		return nil, err
	}
	spec, err := ParseString(string(b))
	if err != nil {
		return nil, fmt.Errorf("scenario: embedded scenario %q: %w", name, err)
	}
	return spec, nil
}
