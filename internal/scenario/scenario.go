// Package scenario unifies the repo's experiment description into one
// line-based file format: a single .scenario file names the workload (a
// composable workload.GenSpec), the fleet mix, the balancing policy, an
// optional closed-loop autoscale policy, and the fault schedule. The
// same Spec drives core's scenario study, ttsim -scenario, and the serve
// layer's /v1/experiments/scenario endpoint — so the embedded corpus of
// named scenarios doubles as a byte-for-byte regression suite: any
// behavioral drift in workload, fleet, faults or autoscale code breaks a
// pinned golden.
//
// The format is deliberately the same dialect as internal/faults' DSL:
// `#` comments, one directive per line, unit-suffixed time spans (90s,
// 45m, 12h30m, 1d2h). Example:
//
//	workload weekly
//	days 7
//	step 10m
//	mul surge 4d12h ramp 2h factor 1.8 hold 6h
//	fleet 1U=13,2U=10,OCP=4
//	balance thermal
//	autoscale hysteresis
//	fault 4d13h chiller-trip for 45m
package scenario

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/autoscale"
	"repro/internal/faults"
	"repro/internal/fleet"
	"repro/internal/workload"
)

// MixEntry is one slice of the fleet mix, held as a class tag so this
// package stays importable by core (which owns the MachineClass models).
type MixEntry struct {
	// Tag is the canonical class spelling: "1U", "2U" or "OCP".
	Tag string
	// Racks is the slice's rack population.
	Racks int
	// NoWax strips the PCM retrofit from this slice.
	NoWax bool
}

// ClassTags lists the canonical class tags in presentation order.
var ClassTags = []string{"1U", "2U", "OCP"}

// canonicalTag resolves a case-insensitive class tag spelling.
func canonicalTag(tag string) (string, bool) {
	switch strings.ToUpper(strings.TrimSpace(tag)) {
	case "1U":
		return "1U", true
	case "2U":
		return "2U", true
	case "OCP", "OPENCOMPUTE":
		return "OCP", true
	}
	return "", false
}

// Spec is one fully-described experiment: what the load looks like, what
// hardware serves it, how it is balanced and scaled, and what goes wrong.
// Equal Specs describe bit-identical runs; Spec.String() is the canonical
// serialization (Parse(String(s)) == s), which is what the serving layer
// hashes.
type Spec struct {
	// Gen describes the workload.
	Gen workload.GenSpec
	// Mix lists the rack populations in file order.
	Mix []MixEntry
	// Balance is the load-balancing policy (a canonical fleet.Policies()
	// name).
	Balance string
	// Autoscale is the closed-loop decision policy (a canonical
	// autoscale.Policies() name), or "" for open-loop.
	Autoscale string
	// Faults is the injected fault schedule (nil for a clean run).
	Faults *faults.Schedule
}

// Default is the baseline scenario: the paper's two-day diurnal trace on
// the default mixed fleet, least-loaded balancing, open loop, no faults.
func Default() *Spec {
	return &Spec{
		Gen: workload.DefaultGenSpec(),
		Mix: []MixEntry{
			{Tag: "1U", Racks: 13},
			{Tag: "2U", Racks: 10},
			{Tag: "OCP", Racks: 4},
		},
		Balance: "leastloaded",
	}
}

// TotalRacks sums the mix's rack populations.
func (s *Spec) TotalRacks() int {
	n := 0
	for _, m := range s.Mix {
		n += m.Racks
	}
	return n
}

// Validate checks the spec end to end: the workload builds, the mix is
// populated, the policies exist, and every fault targets a rack or class
// the mix actually has.
func (s *Spec) Validate() error {
	if _, err := s.Gen.Build(); err != nil {
		return fmt.Errorf("scenario: workload: %w", err)
	}
	if len(s.Mix) == 0 {
		return fmt.Errorf("scenario: empty fleet mix")
	}
	for _, m := range s.Mix {
		if _, ok := canonicalTag(m.Tag); !ok {
			return fmt.Errorf("scenario: unknown class tag %q in mix", m.Tag)
		}
		if m.Racks <= 0 {
			return fmt.Errorf("scenario: class %s has non-positive rack count %d", m.Tag, m.Racks)
		}
	}
	if !validName(s.Balance, fleet.Policies()) {
		return fmt.Errorf("scenario: unknown balance policy %q (want one of %s)",
			s.Balance, strings.Join(fleet.Policies(), ", "))
	}
	if s.Autoscale != "" && !validName(s.Autoscale, autoscale.Policies()) {
		return fmt.Errorf("scenario: unknown autoscale policy %q (want one of %s)",
			s.Autoscale, strings.Join(autoscale.Policies(), ", "))
	}
	if s.Faults != nil {
		if err := s.Faults.CheckTargets(s.TotalRacks(), len(s.Mix)); err != nil {
			return fmt.Errorf("scenario: %w", err)
		}
	}
	return nil
}

// validName reports whether name is one of the canonical spellings.
func validName(name string, names []string) bool {
	for _, n := range names {
		if n == name {
			return true
		}
	}
	return false
}

// String renders the canonical serialization: every directive in fixed
// section order, spans and numbers in their normal forms. Parsing the
// output reproduces the Spec exactly, which makes this the normal form
// the serving layer canonicalizes requests to.
func (s *Spec) String() string {
	var b strings.Builder
	g := s.Gen
	fmt.Fprintf(&b, "workload %s\n", g.Pattern)
	fmt.Fprintf(&b, "days %d\n", g.Days)
	fmt.Fprintf(&b, "step %s\n", faults.FormatSpan(g.StepS))
	fmt.Fprintf(&b, "seed %d\n", g.Seed)
	fmt.Fprintf(&b, "mean %s\n", fnum(g.MeanUtil))
	fmt.Fprintf(&b, "peak %s\n", fnum(g.PeakUtil))
	fmt.Fprintf(&b, "noise %s\n", fnum(g.NoiseAmp))
	fmt.Fprintf(&b, "sharpness %s\n", fnum(g.PeakSharpness))
	if g.WeekendDamping != 0 {
		fmt.Fprintf(&b, "damping %s\n", fnum(g.WeekendDamping))
	}
	for _, smp := range g.Samples {
		fmt.Fprintf(&b, "sample %s %s\n", faults.FormatSpan(smp.AtS), fnum(smp.Util))
	}
	for _, c := range g.Components {
		b.WriteString(formatComponent(c))
		b.WriteByte('\n')
	}
	b.WriteString("fleet ")
	for i, m := range s.Mix {
		if i > 0 {
			b.WriteByte(',')
		}
		if m.NoWax {
			b.WriteString("nowax:")
		}
		fmt.Fprintf(&b, "%s=%d", m.Tag, m.Racks)
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "balance %s\n", s.Balance)
	if s.Autoscale != "" {
		fmt.Fprintf(&b, "autoscale %s\n", s.Autoscale)
	}
	if s.Faults != nil {
		for _, e := range s.Faults.Events() {
			fmt.Fprintf(&b, "fault %s\n", e)
		}
	}
	return b.String()
}

// formatComponent renders one component directive in canonical form.
func formatComponent(c workload.Component) string {
	if c.Kind == workload.CompSeason {
		return fmt.Sprintf("%s season period %s amp %s",
			c.Op, faults.FormatSpan(c.PeriodS), fnum(c.Value))
	}
	valueWord := "peak"
	if c.Op == workload.OpMul {
		valueWord = "factor"
	}
	out := fmt.Sprintf("%s %s %s ramp %s %s %s",
		c.Op, c.Kind, faults.FormatSpan(c.AtS), faults.FormatSpan(c.RampS), valueWord, fnum(c.Value))
	if c.HoldS != 0 {
		out += fmt.Sprintf(" hold %s", faults.FormatSpan(c.HoldS))
	}
	return out
}

// fnum renders a float in its shortest exact spelling.
func fnum(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
