package report

import (
	"math"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/pcm"
	"repro/internal/tco"
	"repro/internal/workload"
)

func TestTable1Rendering(t *testing.T) {
	out := Table1(pcm.DatacenterCriteria(), pcm.Families())
	for _, want := range []string{
		"Table 1", "Salt Hydrates", "Metal Alloys", "Fatty Acids",
		"n-Paraffins", "Commercial Paraffins", "Corrosive",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Table1 missing %q", want)
		}
	}
	// Commercial paraffins rank first under datacenter criteria.
	lines := strings.Split(out, "\n")
	if len(lines) < 3 || !strings.Contains(lines[2], "Commercial Paraffins") {
		t.Errorf("best-ranked row = %q, want Commercial Paraffins", lines[2])
	}
}

func TestCostComparison(t *testing.T) {
	comm, err := pcm.CommercialParaffin(50)
	if err != nil {
		t.Fatal(err)
	}
	out := CostComparison(pcm.Eicosane(), comm, 1000)
	if !strings.Contains(out, "50x") {
		t.Errorf("missing the 50x headline: %q", out)
	}
	if !strings.Contains(out, "Eicosane") {
		t.Error("missing eicosane row")
	}
}

func TestValidationRendering(t *testing.T) {
	v := &core.ValidationResult{
		IdlePowerW: 90, LoadedPowerW: 185, CPUIdleW: 6, CPULoadedW: 46,
		DieIdleC: 31, DieLoadedC: 61, SteadyMeanAbsDiffC: 0.22,
		HeatUpCorrelation: 0.98, MeltDepressionHours: 2.1, FreezeElevationHours: 2.4,
	}
	out := Validation(v)
	for _, want := range []string{"90 W idle -> 185 W loaded", "0.22", "0.980", "2.1 h"} {
		if !strings.Contains(out, want) {
			t.Errorf("Validation missing %q in %q", want, out)
		}
	}
}

func TestTraceSummaryRendering(t *testing.T) {
	out := TraceSummary(workload.GoogleTwoDay())
	for _, want := range []string{"mean 50.0%", "peak 95.0%", "Web Search", "Orkut", "MapReduce"} {
		if !strings.Contains(out, want) {
			t.Errorf("TraceSummary missing %q", want)
		}
	}
}

func TestTable2Rendering(t *testing.T) {
	out := Table2(tco.PaperParams())
	for _, want := range []string{
		"CoolingInfraCapEx", "7.0", "42-146", "11.00-38.50", "DCInterest",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Table2 missing %q", want)
		}
	}
}

func TestSweepsRendering(t *testing.T) {
	s := core.NewStudy()
	res, err := s.RunBlockageSweeps()
	if err != nil {
		t.Fatal(err)
	}
	out := Sweeps(res)
	if !strings.Contains(out, "1U low power") || !strings.Contains(out, "Open Compute") {
		t.Error("Sweeps missing machine sections")
	}
	if strings.Count(out, "%") < 20 {
		t.Error("Sweeps missing data rows")
	}
}

func TestCoolingAndThroughputRendering(t *testing.T) {
	s := core.NewStudy()
	cr, err := s.RunCoolingStudy(core.TwoU)
	if err != nil {
		t.Fatal(err)
	}
	out := Cooling(cr)
	if !strings.Contains(out, "peak cooling") || !strings.Contains(out, "retrofit") {
		t.Errorf("Cooling rendering incomplete: %q", out)
	}
	tr, err := s.RunThroughputStudy(core.TwoU)
	if err != nil {
		t.Fatal(err)
	}
	out = Throughput(tr)
	if !strings.Contains(out, "peak throughput: +69%") {
		t.Errorf("Throughput rendering: %q", out)
	}
}

func TestFleetRendering(t *testing.T) {
	r := &core.FleetResult{
		Spec: core.FleetSpec{Mix: []core.FleetClass{
			{Class: core.OneU, Racks: 3},
			{Class: core.TwoU, Racks: 1, NoWax: true},
		}},
		Racks: 4, Servers: 150, Workers: 2,
		Policies: []core.FleetPolicyResult{
			{Policy: "roundrobin", PeakCoolingW: 33400, BaselinePeakCoolingW: 36000,
				PeakReduction: 0.074, HottestRackPeakW: 7210},
			{Policy: "thermal", PeakCoolingW: 35600, BaselinePeakCoolingW: 36000,
				PeakReduction: 0.012, HottestRackPeakW: 7210, TCODeltaUSD: -1000,
				ShedServerSeconds: 12},
		},
		FluidDelta: math.NaN(),
	}
	out := Fleet(r)
	for _, want := range []string{
		"4 racks, 150 servers, 2 workers", "no wax",
		"roundrobin", "thermal", "shed 12 server-seconds",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Fleet missing %q in:\n%s", want, out)
		}
	}
	if strings.Contains(out, "fluid-engine anchor") {
		t.Error("anchor line printed for a heterogeneous fleet")
	}
	r.FluidDelta, r.FluidPeakCoolingW = 0.0001, 33400
	if out = Fleet(r); !strings.Contains(out, "fluid-engine anchor") {
		t.Errorf("anchor line missing:\n%s", out)
	}
}

func TestExtensionsRendering(t *testing.T) {
	s := core.NewStudy()
	cw, err := s.CompareChilledWater(core.OneU)
	if err != nil {
		t.Fatal(err)
	}
	comp, err := s.RunComplementarity(core.OneU)
	if err != nil {
		t.Fatal(err)
	}
	night, err := s.RunNightAdvantages(core.OneU)
	if err != nil {
		t.Fatal(err)
	}
	out := Extensions(cw, comp, night)
	for _, want := range []string{"chilled water", "UPS batteries", "night shift"} {
		if !strings.Contains(out, want) {
			t.Errorf("Extensions missing %q", want)
		}
	}
}
