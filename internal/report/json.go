package report

import (
	"math"

	"repro/internal/core"
	"repro/internal/pcm"
	"repro/internal/tco"
	"repro/internal/timeseries"
	"repro/internal/units"
	"repro/internal/workload"
)

// This file is the machine-readable twin of the text tables: one view
// struct per experiment, shaped for JSON. The ttsimd handlers serve these
// views verbatim and the golden regression corpus pins their encodings, so
// two rules hold throughout: field order is meaning (encoding/json emits
// struct fields in declaration order, which makes the encoding
// byte-deterministic), and no view ever carries NaN or a machine-dependent
// quantity (worker counts, wall times) — NaN-able numbers go through fnum,
// which maps them to null.

// fnum converts a float into its JSON-safe pointer form: NaN (and the
// infinities, which encoding/json also rejects) become nil/null.
func fnum(v float64) *float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return nil
	}
	return &v
}

// SeriesView is the JSON shape of a time series: the grid, summary
// statistics, and the full sample vector.
type SeriesView struct {
	StartS float64   `json:"start_s"`
	StepS  float64   `json:"step_s"`
	N      int       `json:"n"`
	Min    float64   `json:"min"`
	Max    float64   `json:"max"`
	Mean   float64   `json:"mean"`
	Values []float64 `json:"values"`
}

// SeriesJSON builds the view (nil in, nil out).
func SeriesJSON(s *timeseries.Series) *SeriesView {
	if s == nil {
		return nil
	}
	v := &SeriesView{StartS: s.Start, StepS: s.Step, N: s.Len(), Values: s.Values}
	if s.Len() > 0 {
		v.Min, _ = s.Trough()
		v.Max, _ = s.Peak()
		v.Mean = s.Mean()
	}
	return v
}

// ---------------------------------------------------------------------------
// table1

// MaterialView is one Table 1 row.
type MaterialView struct {
	Class                  string  `json:"class"`
	MeltingPointC          float64 `json:"melting_point_c"`
	HeatOfFusionJPerG      float64 `json:"heat_of_fusion_j_per_g"`
	DensitySolidGPerMl     float64 `json:"density_solid_g_per_ml"`
	Stability              string  `json:"stability"`
	ElectricallyConductive bool    `json:"electrically_conductive"`
	Corrosive              bool    `json:"corrosive"`
}

// CostView is the Section 2.1 eicosane-vs-commercial comparison.
type CostView struct {
	Liters       float64 `json:"liters"`
	LabName      string  `json:"lab_name"`
	LabTotalUSD  float64 `json:"lab_total_usd"`
	CommName     string  `json:"commercial_name"`
	CommTotalUSD float64 `json:"commercial_total_usd"`
	CostRatio    float64 `json:"cost_ratio"`
}

// Table1View is the PCM survey plus the cost comparison.
type Table1View struct {
	Materials []MaterialView `json:"materials"`
	Cost      *CostView      `json:"cost_comparison,omitempty"`
}

// Table1JSON ranks the materials with the datacenter criteria and renders
// the survey.
func Table1JSON(crit pcm.SelectionCriteria, materials []pcm.Material, eico, comm pcm.Material, liters float64) *Table1View {
	out := &Table1View{}
	for _, m := range crit.Ranked(materials) {
		out.Materials = append(out.Materials, MaterialView{
			Class:                  m.Class,
			MeltingPointC:          m.MeltingPointC,
			HeatOfFusionJPerG:      m.HeatOfFusion / 1000,
			DensitySolidGPerMl:     m.DensitySolid / 1000,
			Stability:              m.Stability.String(),
			ElectricallyConductive: m.ElectricallyConductive,
			Corrosive:              m.Corrosive,
		})
	}
	out.Cost = &CostView{
		Liters:       liters,
		LabName:      eico.Name,
		LabTotalUSD:  eico.CostForVolume(liters),
		CommName:     comm.Name,
		CommTotalUSD: comm.CostForVolume(liters),
		CostRatio:    eico.CostPerTon / comm.CostPerTon,
	}
	return out
}

// ---------------------------------------------------------------------------
// fig4

// ValidationView is the Figure 4 / Section 3 outcome.
type ValidationView struct {
	IdlePowerW           float64     `json:"idle_power_w"`
	LoadedPowerW         float64     `json:"loaded_power_w"`
	CPUIdleW             float64     `json:"cpu_idle_w"`
	CPULoadedW           float64     `json:"cpu_loaded_w"`
	DieIdleC             float64     `json:"die_idle_c"`
	DieLoadedC           float64     `json:"die_loaded_c"`
	SteadyMeanAbsDiffC   float64     `json:"steady_mean_abs_diff_c"`
	HeatUpCorrelation    float64     `json:"heatup_correlation"`
	MeltDepressionHours  float64     `json:"melt_depression_hours"`
	FreezeElevationHours float64     `json:"freeze_elevation_hours"`
	RealWax              *SeriesView `json:"real_wax"`
	RealPlacebo          *SeriesView `json:"real_placebo"`
	ModelWax             *SeriesView `json:"model_wax"`
	ModelPlacebo         *SeriesView `json:"model_placebo"`
}

// ValidationJSON builds the view.
func ValidationJSON(v *core.ValidationResult) *ValidationView {
	return &ValidationView{
		IdlePowerW:           v.IdlePowerW,
		LoadedPowerW:         v.LoadedPowerW,
		CPUIdleW:             v.CPUIdleW,
		CPULoadedW:           v.CPULoadedW,
		DieIdleC:             v.DieIdleC,
		DieLoadedC:           v.DieLoadedC,
		SteadyMeanAbsDiffC:   v.SteadyMeanAbsDiffC,
		HeatUpCorrelation:    v.HeatUpCorrelation,
		MeltDepressionHours:  v.MeltDepressionHours,
		FreezeElevationHours: v.FreezeElevationHours,
		RealWax:              SeriesJSON(v.RealWax),
		RealPlacebo:          SeriesJSON(v.RealPlacebo),
		ModelWax:             SeriesJSON(v.ModelWax),
		ModelPlacebo:         SeriesJSON(v.ModelPlacebo),
	}
}

// ---------------------------------------------------------------------------
// fig7

// SweepPointView is one blockage operating point.
type SweepPointView struct {
	Blockage     float64   `json:"blockage"`
	FlowFraction float64   `json:"flow_fraction"`
	OutletC      float64   `json:"outlet_c"`
	SocketC      []float64 `json:"socket_c"`
	Unsafe       bool      `json:"unsafe"`
}

// SweepView is one machine's Figure 7 curve.
type SweepView struct {
	Class  string           `json:"class"`
	Points []SweepPointView `json:"points"`
}

// SweepsJSON builds the views in Classes order.
func SweepsJSON(res []core.SweepResult) []SweepView {
	out := make([]SweepView, 0, len(res))
	for _, r := range res {
		sv := SweepView{Class: r.Class.String()}
		for _, p := range r.Points {
			sv.Points = append(sv.Points, SweepPointView{
				Blockage:     p.Blockage,
				FlowFraction: p.FlowFraction,
				OutletC:      p.OutletC,
				SocketC:      p.SocketC,
				Unsafe:       p.Unsafe,
			})
		}
		out = append(out, sv)
	}
	return out
}

// ---------------------------------------------------------------------------
// fig10

// TraceShareView is one job type's share of the load.
type TraceShareView struct {
	JobType string  `json:"job_type"`
	Share   float64 `json:"share"`
}

// TraceView is the Figure 10 summary plus the normalized load curve.
type TraceView struct {
	Mean       float64          `json:"mean"`
	Peak       float64          `json:"peak"`
	PeakAtHour float64          `json:"peak_at_hour"`
	Trough     float64          `json:"trough"`
	Shares     []TraceShareView `json:"shares"`
	Total      *SeriesView      `json:"total"`
}

// TraceJSON builds the view.
func TraceJSON(tr *workload.Trace) *TraceView {
	peak, at := tr.Total.Peak()
	trough, _ := tr.Total.Trough()
	out := &TraceView{
		Mean:       tr.Total.Mean(),
		Peak:       peak,
		PeakAtHour: at / units.Hour,
		Trough:     trough,
		Total:      SeriesJSON(tr.Total),
	}
	for _, j := range workload.JobTypes {
		out.Shares = append(out.Shares, TraceShareView{
			JobType: j.String(),
			Share:   tr.PerType[j].Mean() / tr.Total.Mean(),
		})
	}
	return out
}

// ---------------------------------------------------------------------------
// fig11

// CoolingView is one machine's Figure 11 / Section 5.1 outcome.
type CoolingView struct {
	Class                   string      `json:"class"`
	MeltC                   float64     `json:"melt_c"`
	MeltOnsetUtilization    float64     `json:"melt_onset_utilization"`
	PeakBaselineW           float64     `json:"peak_baseline_w"`
	PeakWithPCMW            float64     `json:"peak_with_pcm_w"`
	PeakReduction           float64     `json:"peak_reduction"`
	ResolidifyHours         float64     `json:"resolidify_hours"`
	ExtraServers            int         `json:"extra_servers"`
	AnnualCoolingSavingsUSD float64     `json:"annual_cooling_savings_usd"`
	RetrofitSavingsUSD      float64     `json:"retrofit_savings_usd"`
	Baseline                *SeriesView `json:"baseline"`
	WithPCM                 *SeriesView `json:"with_pcm"`
}

// CoolingJSON builds the view.
func CoolingJSON(r *core.CoolingResult) *CoolingView {
	return &CoolingView{
		Class:                   r.Class.String(),
		MeltC:                   r.MeltC,
		MeltOnsetUtilization:    r.MeltOnsetUtilization,
		PeakBaselineW:           r.Analysis.PeakBaselineW,
		PeakWithPCMW:            r.Analysis.PeakWithPCMW,
		PeakReduction:           r.Analysis.PeakReduction,
		ResolidifyHours:         r.Analysis.ResolidifyHours,
		ExtraServers:            r.ExtraServers,
		AnnualCoolingSavingsUSD: r.AnnualCoolingSavingsUSD,
		RetrofitSavingsUSD:      r.RetrofitSavingsUSD,
		Baseline:                SeriesJSON(r.Baseline),
		WithPCM:                 SeriesJSON(r.WithPCM),
	}
}

// ---------------------------------------------------------------------------
// fig12

// ThroughputView is one machine's Figure 12 / Section 5.2 outcome.
type ThroughputView struct {
	Class                    string      `json:"class"`
	LimitW                   float64     `json:"limit_w"`
	PeakGain                 float64     `json:"peak_gain"`
	DelayHours               float64     `json:"delay_hours"`
	TCOEfficiencyImprovement float64     `json:"tco_efficiency_improvement"`
	Ideal                    *SeriesView `json:"ideal"`
	NoWax                    *SeriesView `json:"no_wax"`
	WithWax                  *SeriesView `json:"with_wax"`
}

// ThroughputJSON builds the view.
func ThroughputJSON(r *core.ThroughputResult) *ThroughputView {
	return &ThroughputView{
		Class:                    r.Class.String(),
		LimitW:                   r.LimitW,
		PeakGain:                 r.PeakGain,
		DelayHours:               r.DelayHours,
		TCOEfficiencyImprovement: r.TCOEfficiencyImprovement,
		Ideal:                    SeriesJSON(r.Ideal),
		NoWax:                    SeriesJSON(r.NoWax),
		WithWax:                  SeriesJSON(r.WithWax),
	}
}

// ---------------------------------------------------------------------------
// table2

// Table2View is the TCO parameter table ($/month rates).
type Table2View struct {
	FacilitySpaceCapExPerSqFt float64 `json:"facility_space_capex_per_sqft"`
	UPSCapExPerServer         float64 `json:"ups_capex_per_server"`
	PowerInfraCapExPerKW      float64 `json:"power_infra_capex_per_kw"`
	CoolingInfraCapExPerKW    float64 `json:"cooling_infra_capex_per_kw"`
	RestCapExPerKW            float64 `json:"rest_capex_per_kw"`
	DCInterestPerKW           float64 `json:"dc_interest_per_kw"`
	ServerAmortizationMonths  float64 `json:"server_amortization_months"`
	ServerInterestMonthly     float64 `json:"server_interest_monthly"`
	DatacenterOpExPerKW       float64 `json:"datacenter_opex_per_kw"`
	ServerEnergyOpExPerKW     float64 `json:"server_energy_opex_per_kw"`
	ServerPowerOpExPerKW      float64 `json:"server_power_opex_per_kw"`
	CoolingEnergyOpExPerKW    float64 `json:"cooling_energy_opex_per_kw"`
	RestOpExPerKW             float64 `json:"rest_opex_per_kw"`
}

// Table2JSON builds the view.
func Table2JSON(p tco.Params) *Table2View {
	return &Table2View{
		FacilitySpaceCapExPerSqFt: p.FacilitySpaceCapExPerSqFt,
		UPSCapExPerServer:         p.UPSCapExPerServer,
		PowerInfraCapExPerKW:      p.PowerInfraCapExPerKW,
		CoolingInfraCapExPerKW:    p.CoolingInfraCapExPerKW,
		RestCapExPerKW:            p.RestCapExPerKW,
		DCInterestPerKW:           p.DCInterestPerKW,
		ServerAmortizationMonths:  p.ServerAmortizationMonths,
		ServerInterestMonthly:     p.ServerInterestMonthly,
		DatacenterOpExPerKW:       p.DatacenterOpExPerKW,
		ServerEnergyOpExPerKW:     p.ServerEnergyOpExPerKW,
		ServerPowerOpExPerKW:      p.ServerPowerOpExPerKW,
		CoolingEnergyOpExPerKW:    p.CoolingEnergyOpExPerKW,
		RestOpExPerKW:             p.RestOpExPerKW,
	}
}

// ---------------------------------------------------------------------------
// tco

// TCOMachineView is one machine class's Section 5 economics summary.
type TCOMachineView struct {
	Class                    string  `json:"class"`
	Servers                  int     `json:"servers"`
	ServerCostUSD            float64 `json:"server_cost_usd"`
	AnnualTCOUSD             float64 `json:"annual_tco_usd"`
	CoolingSavingsUSDPerYear float64 `json:"cooling_savings_usd_per_year"`
	ExtraServers             int     `json:"extra_servers"`
	RetrofitSavingsUSD       float64 `json:"retrofit_savings_usd"`
	PeakGain                 float64 `json:"peak_gain"`
	TCOEfficiencyImprovement float64 `json:"tco_efficiency_improvement"`
}

// TCOMachineJSON builds one machine's row from its already-run studies.
func TCOMachineJSON(m core.MachineClass, servers int, serverCostUSD, annualUSD float64, cool *core.CoolingResult, thr *core.ThroughputResult) TCOMachineView {
	return TCOMachineView{
		Class:                    m.String(),
		Servers:                  servers,
		ServerCostUSD:            serverCostUSD,
		AnnualTCOUSD:             annualUSD,
		CoolingSavingsUSDPerYear: cool.AnnualCoolingSavingsUSD,
		ExtraServers:             cool.ExtraServers,
		RetrofitSavingsUSD:       cool.RetrofitSavingsUSD,
		PeakGain:                 thr.PeakGain,
		TCOEfficiencyImprovement: thr.TCOEfficiencyImprovement,
	}
}

// ---------------------------------------------------------------------------
// extensions

// ExtensionView is one machine's extensions block: storage alternatives,
// grid complementarity, night advantages, emergency ride-through,
// relocation economics, and wax placement.
type ExtensionView struct {
	Class string `json:"class"`

	WaxReduction          float64 `json:"wax_reduction"`
	TankReduction         float64 `json:"tank_reduction"`
	TankVolumeM3          float64 `json:"tank_volume_m3"`
	TankPumpKWhPerDay     float64 `json:"tank_pump_kwh_per_day"`
	TankStandingKWhPerDay float64 `json:"tank_standing_kwh_per_day"`

	TotalReductionBatteryOnly float64 `json:"total_reduction_battery_only"`
	TotalReductionWaxOnly     float64 `json:"total_reduction_wax_only"`
	TotalReductionCombined    float64 `json:"total_reduction_combined"`

	FreeFractionBase float64 `json:"free_fraction_base"`
	FreeFractionPCM  float64 `json:"free_fraction_pcm"`
	TOUCostBaseUSD   float64 `json:"tou_cost_base_usd"`
	TOUCostPCMUSD    float64 `json:"tou_cost_pcm_usd"`
	PUEBase          float64 `json:"pue_base"`
	PUEPCM           float64 `json:"pue_pcm"`

	RideThroughNoWaxMin     float64 `json:"ride_through_no_wax_min"`
	RideThroughWithWaxMin   float64 `json:"ride_through_with_wax_min"`
	RideThroughExtensionMin float64 `json:"ride_through_extension_min"`

	RelocatedNoWax             float64 `json:"relocated_no_wax_server_h_per_day"`
	RelocatedWithWax           float64 `json:"relocated_with_wax_server_h_per_day"`
	RelocationAnnualSavingsUSD float64 `json:"relocation_annual_savings_usd"`

	WakeReduction float64 `json:"wake_reduction"`
	BulkReduction float64 `json:"bulk_reduction"`
	WakeSwingK    float64 `json:"wake_swing_k"`
	BulkSwingK    float64 `json:"bulk_swing_k"`
}

// ExtensionJSON assembles one machine's extensions view.
func ExtensionJSON(cw *core.StorageComparison, comp *core.ComplementarityResult, night *core.NightAdvantages, em *core.EmergencyResult, rel *core.RelocationResult, pl *core.PlacementResult) ExtensionView {
	return ExtensionView{
		Class:                      cw.Class.String(),
		WaxReduction:               cw.WaxReduction,
		TankReduction:              cw.TankReduction,
		TankVolumeM3:               cw.TankVolumeM3,
		TankPumpKWhPerDay:          cw.TankPumpKWhPerDay,
		TankStandingKWhPerDay:      cw.TankStandingKWhPerDay,
		TotalReductionBatteryOnly:  comp.TotalReductionBatteryOnly,
		TotalReductionWaxOnly:      comp.TotalReductionWaxOnly,
		TotalReductionCombined:     comp.TotalReductionCombined,
		FreeFractionBase:           night.FreeFractionBase,
		FreeFractionPCM:            night.FreeFractionPCM,
		TOUCostBaseUSD:             night.TOUCostBaseUSD,
		TOUCostPCMUSD:              night.TOUCostPCMUSD,
		PUEBase:                    night.PUEBase,
		PUEPCM:                     night.PUEPCM,
		RideThroughNoWaxMin:        em.RideThroughNoWaxMin,
		RideThroughWithWaxMin:      em.RideThroughWithWaxMin,
		RideThroughExtensionMin:    em.ExtensionMin,
		RelocatedNoWax:             rel.RelocatedNoWax,
		RelocatedWithWax:           rel.RelocatedWithWax,
		RelocationAnnualSavingsUSD: rel.AnnualSavingsUSD,
		WakeReduction:              pl.WakeReduction,
		BulkReduction:              pl.BulkReduction,
		WakeSwingK:                 pl.WakeSwingK,
		BulkSwingK:                 pl.BulkSwingK,
	}
}

// ---------------------------------------------------------------------------
// waxsweep

// WaxSweepPointView is one wax-quantity operating point.
type WaxSweepPointView struct {
	Multiplier    float64 `json:"multiplier"`
	WaxLiters     float64 `json:"wax_liters"`
	PeakReduction float64 `json:"peak_reduction"`
}

// WaxSweepView is one machine's quantity sweep.
type WaxSweepView struct {
	Class  string              `json:"class"`
	Points []WaxSweepPointView `json:"points"`
}

// WaxSweepJSON builds the view.
func WaxSweepJSON(m core.MachineClass, pts []core.WaxSweepPoint) WaxSweepView {
	out := WaxSweepView{Class: m.String()}
	for _, p := range pts {
		out.Points = append(out.Points, WaxSweepPointView{
			Multiplier:    p.Multiplier,
			WaxLiters:     p.WaxLiters,
			PeakReduction: p.PeakReduction,
		})
	}
	return out
}

// ---------------------------------------------------------------------------
// fleet

// FleetMixView is one slice of the fleet mix.
type FleetMixView struct {
	Class string `json:"class"`
	Racks int    `json:"racks"`
	NoWax bool   `json:"no_wax"`
}

// FleetPolicyView is one policy's outcome over the fleet. Worker counts
// are deliberately absent: they change wall time, never results.
type FleetPolicyView struct {
	Policy                  string      `json:"policy"`
	PeakPowerW              float64     `json:"peak_power_w"`
	PeakCoolingW            float64     `json:"peak_cooling_w"`
	BaselinePeakCoolingW    float64     `json:"baseline_peak_cooling_w"`
	PeakReduction           float64     `json:"peak_reduction"`
	HottestRackPeakW        float64     `json:"hottest_rack_peak_w"`
	AnnualCoolingSavingsUSD float64     `json:"annual_cooling_savings_usd"`
	TCODeltaUSD             float64     `json:"tco_delta_usd"`
	ShedServerSeconds       float64     `json:"shed_server_seconds"`
	CoolingLoadW            *SeriesView `json:"cooling_load_w"`
}

// FleetResultView is the fleet experiment outcome.
type FleetResultView struct {
	Racks             int               `json:"racks"`
	Servers           int               `json:"servers"`
	Mix               []FleetMixView    `json:"mix"`
	Policies          []FleetPolicyView `json:"policies"`
	Homogeneous       bool              `json:"homogeneous"`
	FluidPeakCoolingW *float64          `json:"fluid_peak_cooling_w,omitempty"`
	FluidDelta        *float64          `json:"fluid_delta,omitempty"`
}

// FleetJSON builds the view.
func FleetJSON(r *core.FleetResult) *FleetResultView {
	out := &FleetResultView{
		Racks:       r.Racks,
		Servers:     r.Servers,
		Homogeneous: r.Homogeneous,
		FluidDelta:  fnum(r.FluidDelta),
	}
	if !math.IsNaN(r.FluidDelta) {
		out.FluidPeakCoolingW = fnum(r.FluidPeakCoolingW)
	}
	for _, fc := range r.Spec.Mix {
		out.Mix = append(out.Mix, FleetMixView{Class: fc.Class.String(), Racks: fc.Racks, NoWax: fc.NoWax})
	}
	for _, p := range r.Policies {
		out.Policies = append(out.Policies, FleetPolicyView{
			Policy:                  p.Policy,
			PeakPowerW:              p.PeakPowerW,
			PeakCoolingW:            p.PeakCoolingW,
			BaselinePeakCoolingW:    p.BaselinePeakCoolingW,
			PeakReduction:           p.PeakReduction,
			HottestRackPeakW:        p.HottestRackPeakW,
			AnnualCoolingSavingsUSD: p.AnnualCoolingSavingsUSD,
			TCODeltaUSD:             p.TCODeltaUSD,
			ShedServerSeconds:       p.ShedServerSeconds,
			CoolingLoadW:            SeriesJSON(p.CoolingLoadW),
		})
	}
	return out
}

// ---------------------------------------------------------------------------
// faults

// FaultPolicyView is one policy's ride-through under the scenario. Onsets
// are null when that variant rode the whole scenario out unthrottled.
type FaultPolicyView struct {
	Policy                      string      `json:"policy"`
	WaxOnsetS                   *float64    `json:"wax_onset_s"`
	NoWaxOnsetS                 *float64    `json:"no_wax_onset_s"`
	WaxRideThroughS             *float64    `json:"wax_ride_through_s"`
	NoWaxRideThroughS           *float64    `json:"no_wax_ride_through_s"`
	ExtensionS                  *float64    `json:"extension_s"`
	WaxThrottledServerSeconds   float64     `json:"wax_throttled_server_seconds"`
	NoWaxThrottledServerSeconds float64     `json:"no_wax_throttled_server_seconds"`
	WaxShedServerSeconds        float64     `json:"wax_shed_server_seconds"`
	NoWaxShedServerSeconds      float64     `json:"no_wax_shed_server_seconds"`
	PeakInletRiseC              float64     `json:"peak_inlet_rise_c"`
	FaultEvents                 int         `json:"fault_events"`
	InletRiseC                  *SeriesView `json:"inlet_rise_c"`
}

// FaultResultView is the fault experiment outcome.
type FaultResultView struct {
	Racks    int               `json:"racks"`
	Servers  int               `json:"servers"`
	TripAtS  *float64          `json:"trip_at_s"`
	Events   []string          `json:"events"`
	Policies []FaultPolicyView `json:"policies"`
}

// FaultsJSON builds the view; the scheduled events are rendered in their
// scenario-file spelling.
func FaultsJSON(r *core.FaultResult) *FaultResultView {
	out := &FaultResultView{
		Racks:   r.Racks,
		Servers: r.Servers,
		TripAtS: fnum(r.TripAtS),
	}
	for _, e := range r.Events {
		out.Events = append(out.Events, e.String())
	}
	for _, p := range r.Policies {
		out.Policies = append(out.Policies, FaultPolicyView{
			Policy:                      p.Policy,
			WaxOnsetS:                   fnum(p.WaxOnsetS),
			NoWaxOnsetS:                 fnum(p.NoWaxOnsetS),
			WaxRideThroughS:             fnum(p.WaxRideThroughS),
			NoWaxRideThroughS:           fnum(p.NoWaxRideThroughS),
			ExtensionS:                  fnum(p.ExtensionS),
			WaxThrottledServerSeconds:   p.WaxThrottledServerSeconds,
			NoWaxThrottledServerSeconds: p.NoWaxThrottledServerSeconds,
			WaxShedServerSeconds:        p.WaxShedServerSeconds,
			NoWaxShedServerSeconds:      p.NoWaxShedServerSeconds,
			PeakInletRiseC:              p.PeakInletRiseC,
			FaultEvents:                 p.FaultEvents,
			InletRiseC:                  SeriesJSON(p.InletRiseC),
		})
	}
	return out
}

// ---------------------------------------------------------------------------
// autoscale

// AutoscaleArmView is one (scenario, policy) run in the autoscale study.
type AutoscaleArmView struct {
	Name                   string         `json:"name"`
	Closed                 bool           `json:"closed"`
	Balancer               string         `json:"balancer"`
	Policy                 string         `json:"policy,omitempty"`
	ThrottledServerSeconds float64        `json:"throttled_server_seconds"`
	ShedServerSeconds      float64        `json:"shed_server_seconds"`
	CombinedServerSeconds  float64        `json:"combined_server_seconds"`
	PeakInletRiseC         float64        `json:"peak_inlet_rise_c"`
	ThrottleOnsetS         *float64       `json:"throttle_onset_s"`
	Decisions              int            `json:"decisions"`
	Actions                map[string]int `json:"actions,omitempty"`
	AutoscaleEpochs        int            `json:"autoscale_epochs"`
	InletRiseC             *SeriesView    `json:"inlet_rise_c"`
}

// AutoscaleScenarioView is one scenario's arm table and verdict.
type AutoscaleScenarioView struct {
	Scenario             string             `json:"scenario"`
	Events               int                `json:"events"`
	TripAtS              *float64           `json:"trip_at_s"`
	Arms                 []AutoscaleArmView `json:"arms"`
	BestStatic           string             `json:"best_static,omitempty"`
	BestStaticCombined   *float64           `json:"best_static_combined,omitempty"`
	BestAdaptive         string             `json:"best_adaptive,omitempty"`
	BestAdaptiveCombined *float64           `json:"best_adaptive_combined,omitempty"`
	AdaptiveWins         bool               `json:"adaptive_wins"`
}

// AutoscaleResultView is the autoscale experiment outcome.
type AutoscaleResultView struct {
	Racks     int                     `json:"racks"`
	Servers   int                     `json:"servers"`
	Balancer  string                  `json:"balancer"`
	StepS     float64                 `json:"step_s"`
	Days      int                     `json:"days"`
	Seed      int64                   `json:"seed"`
	Scenarios []AutoscaleScenarioView `json:"scenarios"`
}

// AutoscaleJSON builds the view.
func AutoscaleJSON(r *core.AutoscaleResult) *AutoscaleResultView {
	out := &AutoscaleResultView{
		Racks:    r.Racks,
		Servers:  r.Servers,
		Balancer: r.Balancer,
		StepS:    r.Spec.StepS,
		Days:     r.Spec.Days,
		Seed:     r.Spec.Seed,
	}
	for _, sc := range r.Scenarios {
		sv := AutoscaleScenarioView{
			Scenario:             sc.Scenario,
			Events:               sc.Events,
			TripAtS:              fnum(sc.TripAtS),
			BestStatic:           sc.BestStatic,
			BestStaticCombined:   fnum(sc.BestStaticCombined),
			BestAdaptive:         sc.BestAdaptive,
			BestAdaptiveCombined: fnum(sc.BestAdaptiveCombined),
			AdaptiveWins:         sc.AdaptiveWins,
		}
		for _, a := range sc.Arms {
			sv.Arms = append(sv.Arms, AutoscaleArmView{
				Name:                   a.Name,
				Closed:                 a.Closed,
				Balancer:               a.Balancer,
				Policy:                 a.Policy,
				ThrottledServerSeconds: a.ThrottledServerSeconds,
				ShedServerSeconds:      a.ShedServerSeconds,
				CombinedServerSeconds:  a.CombinedServerSeconds,
				PeakInletRiseC:         a.PeakInletRiseC,
				ThrottleOnsetS:         fnum(a.ThrottleOnsetS),
				Decisions:              a.Decisions,
				Actions:                a.Actions,
				AutoscaleEpochs:        a.AutoscaleEpochs,
				InletRiseC:             SeriesJSON(a.InletRiseC),
			})
		}
		out.Scenarios = append(out.Scenarios, sv)
	}
	return out
}

// ---------------------------------------------------------------------------
// scenario

// ScenarioRunView is one variant of the scenario experiment (the wax run
// as described, or the bare open-loop baseline).
type ScenarioRunView struct {
	PeakPowerW             float64     `json:"peak_power_w"`
	PeakCoolingW           float64     `json:"peak_cooling_w"`
	ThrottledServerSeconds float64     `json:"throttled_server_seconds"`
	ShedServerSeconds      float64     `json:"shed_server_seconds"`
	ThrottleOnsetS         *float64    `json:"throttle_onset_s"`
	PeakInletRiseC         float64     `json:"peak_inlet_rise_c"`
	PeakWaxLiquid          float64     `json:"peak_wax_liquid"`
	AbsorbedJ              float64     `json:"absorbed_j"`
	AutoscaleEpochs        int         `json:"autoscale_epochs"`
	InletRiseC             *SeriesView `json:"inlet_rise_c"`
}

// ScenarioResultView is the scenario experiment outcome. Canonical is
// the normal-form scenario text, so a golden diff names exactly which
// description drifted as well as how its numbers moved.
type ScenarioResultView struct {
	Name          string          `json:"name"`
	Canonical     string          `json:"canonical"`
	Racks         int             `json:"racks"`
	Servers       int             `json:"servers"`
	Pattern       string          `json:"pattern"`
	Days          int             `json:"days"`
	StepS         float64         `json:"step_s"`
	Balance       string          `json:"balance"`
	Autoscale     string          `json:"autoscale,omitempty"`
	Epochs        int             `json:"epochs"`
	FaultEvents   int             `json:"fault_events"`
	TripAtS       *float64        `json:"trip_at_s"`
	Wax           ScenarioRunView `json:"wax"`
	NoWax         ScenarioRunView `json:"nowax"`
	PeakShavedW   float64         `json:"peak_shaved_w"`
	PeakShavedPct float64         `json:"peak_shaved_pct"`
	ExtensionS    *float64        `json:"extension_s"`
	Decisions     int             `json:"decisions"`
	Actions       map[string]int  `json:"actions,omitempty"`
}

// scenarioRunJSON builds one variant's view.
func scenarioRunJSON(r core.ScenarioRun) ScenarioRunView {
	return ScenarioRunView{
		PeakPowerW:             r.PeakPowerW,
		PeakCoolingW:           r.PeakCoolingW,
		ThrottledServerSeconds: r.ThrottledServerSeconds,
		ShedServerSeconds:      r.ShedServerSeconds,
		ThrottleOnsetS:         fnum(r.ThrottleOnsetS),
		PeakInletRiseC:         r.PeakInletRiseC,
		PeakWaxLiquid:          r.PeakWaxLiquid,
		AbsorbedJ:              r.AbsorbedJ,
		AutoscaleEpochs:        r.AutoscaleEpochs,
		InletRiseC:             SeriesJSON(r.InletRiseC),
	}
}

// ScenarioJSON builds the view from a scenario study result.
func ScenarioJSON(r *core.ScenarioResult) *ScenarioResultView {
	return &ScenarioResultView{
		Name:          r.Name,
		Canonical:     r.Canonical,
		Racks:         r.Racks,
		Servers:       r.Servers,
		Pattern:       r.Pattern,
		Days:          r.Days,
		StepS:         r.StepS,
		Balance:       r.Balance,
		Autoscale:     r.Autoscale,
		Epochs:        r.Epochs,
		FaultEvents:   r.FaultEvents,
		TripAtS:       fnum(r.TripAtS),
		Wax:           scenarioRunJSON(r.Wax),
		NoWax:         scenarioRunJSON(r.NoWax),
		PeakShavedW:   r.PeakShavedW,
		PeakShavedPct: r.PeakShavedPct,
		ExtensionS:    fnum(r.ExtensionS),
		Decisions:     r.Decisions,
		Actions:       r.Actions,
	}
}

// ---------------------------------------------------------------------------
// check

// CheckRowView is one self-check line.
type CheckRowView struct {
	Name     string  `json:"name"`
	Measured float64 `json:"measured"`
	Paper    float64 `json:"paper"`
	OK       bool    `json:"ok"`
}

// CheckView is the self-check outcome.
type CheckView struct {
	Rows  []CheckRowView `json:"rows"`
	AllOK bool           `json:"all_ok"`
}

// CheckJSON builds the view from a collected bundle.
func CheckJSON(b *core.ResultsBundle) *CheckView {
	rows, allOK := b.SelfCheck()
	out := &CheckView{AllOK: allOK}
	for _, r := range rows {
		out.Rows = append(out.Rows, CheckRowView{Name: r.Name, Measured: r.Measured, Paper: r.Paper, OK: r.OK})
	}
	return out
}
