// Package report renders experiment results as the fixed-width text
// tables the CLI prints. Keeping the formatting here (pure functions from
// result structs to strings) makes the presentation testable and the
// binaries trivial.
package report

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/core"
	"repro/internal/pcm"
	"repro/internal/tco"
	"repro/internal/units"
	"repro/internal/workload"
)

// Table1 renders the PCM survey with the datacenter suitability ranking.
func Table1(crit pcm.SelectionCriteria, materials []pcm.Material) string {
	var b strings.Builder
	fmt.Fprintln(&b, "== Table 1: properties of common solid-liquid PCMs ==")
	fmt.Fprintf(&b, "%-28s %12s %12s %10s %-10s %7s %9s\n",
		"PCM", "Melt (degC)", "HoF (J/g)", "rho (g/ml)", "Stability", "E.Cond", "Corrosive")
	for _, m := range crit.Ranked(materials) {
		cond := "Low"
		if m.ElectricallyConductive {
			cond = "High"
		}
		corr := "No"
		if m.Corrosive {
			corr = "Yes"
		}
		fmt.Fprintf(&b, "%-28s %12.1f %12.0f %10.2f %-10s %7s %9s\n",
			m.Class, m.MeltingPointC, m.HeatOfFusion/1000, m.DensitySolid/1000,
			m.Stability, cond, corr)
	}
	return b.String()
}

// CostComparison renders the Section 2.1 eicosane-vs-commercial price gap
// for a fleet needing the given liters of wax.
func CostComparison(eico, comm pcm.Material, liters float64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Section 2.1 cost comparison (%.0f l of wax):\n", liters)
	fmt.Fprintf(&b, "  %-38s $%11.0f total ($%6.0f/ton)\n", eico.Name, eico.CostForVolume(liters), eico.CostPerTon)
	fmt.Fprintf(&b, "  %-38s $%11.0f total ($%6.0f/ton)\n", comm.Name, comm.CostForVolume(liters), comm.CostPerTon)
	fmt.Fprintf(&b, "  cost ratio %.0fx for %.0f%% lower energy per gram\n",
		eico.CostPerTon/comm.CostPerTon, (1-comm.HeatOfFusion/eico.HeatOfFusion)*100)
	return b.String()
}

// Validation renders the Figure 4 / Section 3 summary.
func Validation(v *core.ValidationResult) string {
	var b strings.Builder
	fmt.Fprintln(&b, "== Figure 4 / Section 3: single-server model validation ==")
	fmt.Fprintf(&b, "wall power:     %.0f W idle -> %.0f W loaded (paper: 90 -> 185)\n", v.IdlePowerW, v.LoadedPowerW)
	fmt.Fprintf(&b, "CPU per socket: %.0f W idle -> %.0f W loaded (paper: 6 -> 46)\n", v.CPUIdleW, v.CPULoadedW)
	fmt.Fprintf(&b, "die sensor:     %.0f degC idle -> %.0f degC loaded (paper: 42 -> 76)\n", v.DieIdleC, v.DieLoadedC)
	fmt.Fprintf(&b, "steady-state real-vs-model mean diff: %.2f degC (paper: 0.22)\n", v.SteadyMeanAbsDiffC)
	fmt.Fprintf(&b, "heat-up real-vs-model correlation:    %.3f\n", v.HeatUpCorrelation)
	fmt.Fprintf(&b, "wax depresses temps for %.1f h while melting (paper: ~2 h)\n", v.MeltDepressionHours)
	fmt.Fprintf(&b, "wax elevates temps for %.1f h while freezing (paper: ~2 h)\n", v.FreezeElevationHours)
	return b.String()
}

// Sweeps renders the Figure 7 tables.
func Sweeps(res []core.SweepResult) string {
	var b strings.Builder
	fmt.Fprintln(&b, "== Figure 7: temperatures vs obstructed airflow ==")
	for _, r := range res {
		fmt.Fprintf(&b, "\n%s:\n%8s %10s %10s  sockets (degC)\n", r.Class, "block", "flow", "outlet")
		for _, p := range r.Points {
			fmt.Fprintf(&b, "%7.0f%% %9.2f%% %9.1fC ", p.Blockage*100, p.FlowFraction*100, p.OutletC)
			for _, sc := range p.SocketC {
				fmt.Fprintf(&b, " %6.1f", sc)
			}
			fmt.Fprintln(&b)
		}
	}
	return b.String()
}

// TraceSummary renders the Figure 10 statistics.
func TraceSummary(tr *workload.Trace) string {
	var b strings.Builder
	fmt.Fprintln(&b, "== Figure 10: two-day normalized datacenter load ==")
	p, at := tr.Total.Peak()
	trough, _ := tr.Total.Trough()
	fmt.Fprintf(&b, "mean %.1f%%, peak %.1f%% at hour %.1f, trough %.1f%%\n",
		tr.Total.Mean()*100, p*100, at/units.Hour, trough*100)
	for _, j := range workload.JobTypes {
		share := tr.PerType[j].Mean() / tr.Total.Mean()
		fmt.Fprintf(&b, "  %-12s %4.0f%% of load\n", j, share*100)
	}
	return b.String()
}

// Cooling renders one machine's Figure 11 block.
func Cooling(r *core.CoolingResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s (melt %.1f degC, onset at %.0f%% load):\n", r.Class, r.MeltC, r.MeltOnsetUtilization*100)
	fmt.Fprintf(&b, "  peak cooling: %.1f kW -> %.1f kW per cluster (-%.1f%%)\n",
		r.Analysis.PeakBaselineW/1000, r.Analysis.PeakWithPCMW/1000, r.Analysis.PeakReduction*100)
	fmt.Fprintf(&b, "  resolidify window: %.1f h (paper: 6-9 h)\n", r.Analysis.ResolidifyHours)
	fmt.Fprintf(&b, "  10 MW alternatives: %d more servers, or $%.0fk/yr smaller cooling system\n",
		r.ExtraServers, r.AnnualCoolingSavingsUSD/1000)
	fmt.Fprintf(&b, "  retrofit savings vs new cooling plant: $%.1fM/yr\n", r.RetrofitSavingsUSD/1e6)
	return b.String()
}

// Throughput renders one machine's Figure 12 block.
func Throughput(r *core.ThroughputResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s (cluster limit %.0f kW):\n", r.Class, r.LimitW/1000)
	fmt.Fprintf(&b, "  peak throughput: +%.0f%% (paper: +33/69/34)\n", r.PeakGain*100)
	fmt.Fprintf(&b, "  thermal limit deferred %.1f h/day (paper: 5.1/3.1/3.1)\n", r.DelayHours)
	fmt.Fprintf(&b, "  TCO efficiency improvement: %.0f%% (paper: 23/39/24)\n", r.TCOEfficiencyImprovement*100)
	return b.String()
}

// Table2 renders the TCO parameter table.
func Table2(p tco.Params) string {
	var b strings.Builder
	fmt.Fprintln(&b, "== Table 2: TCO parameters ($/month) ==")
	rows := []struct {
		name, val, unit string
	}{
		{"FacilitySpaceCapEx", fmt.Sprintf("%.2f", p.FacilitySpaceCapExPerSqFt), "$/sq.ft"},
		{"UPSCapEx", fmt.Sprintf("%.2f", p.UPSCapExPerServer), "$/server"},
		{"PowerInfraCapEx", fmt.Sprintf("%.1f", p.PowerInfraCapExPerKW), "$/kW"},
		{"CoolingInfraCapEx", fmt.Sprintf("%.1f", p.CoolingInfraCapExPerKW), "$/kW"},
		{"RestCapEx", fmt.Sprintf("%.1f", p.RestCapExPerKW), "$/kW"},
		{"DCInterest", fmt.Sprintf("%.1f", p.DCInterestPerKW), "$/kW"},
		{"ServerCapEx ($2k..$7k)", fmt.Sprintf("%.0f-%.0f", p.ServerCapExPerServer(2000), p.ServerCapExPerServer(7000)), "$/server"},
		{"ServerInterest", fmt.Sprintf("%.2f-%.2f", p.ServerInterestPerServer(2000), p.ServerInterestPerServer(7000)), "$/server"},
		{"DatacenterOpEx", fmt.Sprintf("%.1f", p.DatacenterOpExPerKW), "$/kW"},
		{"ServerEnergyOpEx", fmt.Sprintf("%.1f", p.ServerEnergyOpExPerKW), "$/kW"},
		{"ServerPowerOpEx", fmt.Sprintf("%.1f", p.ServerPowerOpExPerKW), "$/kW"},
		{"CoolingEnergyOpEx", fmt.Sprintf("%.1f", p.CoolingEnergyOpExPerKW), "$/kW"},
		{"RestOpEx", fmt.Sprintf("%.1f", p.RestOpExPerKW), "$/kW"},
	}
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-24s %14s  %s\n", r.name, r.val, r.unit)
	}
	return b.String()
}

// Extensions renders one machine's extension block.
func Extensions(cw *core.StorageComparison, comp *core.ComplementarityResult, night *core.NightAdvantages) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s:\n", cw.Class)
	fmt.Fprintf(&b, "  vs chilled water (equal energy): wax -%.1f%% passive | tank -%.1f%% at %.1f m^3, %.0f+%.0f kWh/day overhead\n",
		cw.WaxReduction*100, cw.TankReduction*100, cw.TankVolumeM3,
		cw.TankPumpKWhPerDay, cw.TankStandingKWhPerDay)
	fmt.Fprintf(&b, "  with UPS batteries: grid-total peak -%.1f%% (battery) | -%.1f%% (wax) | -%.1f%% (both)\n",
		comp.TotalReductionBatteryOnly*100, comp.TotalReductionWaxOnly*100, comp.TotalReductionCombined*100)
	fmt.Fprintf(&b, "  night shift: free-cooled %.2f%% -> %.2f%% of heat; chiller bill $%.0f -> $%.0f per trace\n",
		night.FreeFractionBase*100, night.FreeFractionPCM*100, night.TOUCostBaseUSD, night.TOUCostPCMUSD)
	fmt.Fprintf(&b, "  facility PUE: %.3f -> %.3f (the wax shifts when, not how much)\n",
		night.PUEBase, night.PUEPCM)
	return b.String()
}

// Fleet renders the heterogeneous-fleet experiment: one row per balancing
// policy, with the fluid-engine anchor line when the fleet is homogeneous.
func Fleet(r *core.FleetResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "fleet: %d racks, %d servers, %d workers\n", r.Racks, r.Servers, r.Workers)
	for _, fc := range r.Spec.Mix {
		wax := "wax"
		if fc.NoWax {
			wax = "no wax"
		}
		fmt.Fprintf(&b, "  mix: %-20s x %2d racks (%s)\n", fc.Class, fc.Racks, wax)
	}
	fmt.Fprintf(&b, "  %-12s %12s %12s %8s %14s %12s\n",
		"policy", "peak kW", "base kW", "shave", "hottest rack", "$/yr vs rr")
	for _, p := range r.Policies {
		fmt.Fprintf(&b, "  %-12s %12.1f %12.1f %7.1f%% %11.2f kW %+12.0f\n",
			p.Policy, p.PeakCoolingW/1000, p.BaselinePeakCoolingW/1000,
			p.PeakReduction*100, p.HottestRackPeakW/1000, p.TCODeltaUSD)
		if p.ShedServerSeconds > 0 {
			fmt.Fprintf(&b, "  %-12s shed %.0f server-seconds of work\n", "", p.ShedServerSeconds)
		}
	}
	if !math.IsNaN(r.FluidDelta) {
		fmt.Fprintf(&b, "  fluid-engine anchor: peak %.1f kW, fleet delta %.4f%% (must be < 0.5%%)\n",
			r.FluidPeakCoolingW/1000, r.FluidDelta*100)
	}
	return b.String()
}

// Autoscale renders the closed-loop autoscaler experiment: one table per
// scenario comparing the open-loop balancers against the controller's
// decision policies, with the adaptive-vs-static verdict underneath.
func Autoscale(r *core.AutoscaleResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "autoscale: %d racks, %d servers, %d workers; balancer %s under the closed arms\n",
		r.Racks, r.Servers, r.Workers, r.Balancer)
	fmt.Fprintf(&b, "  room %.0f kJ/(K*kW), recovery tau %.0f s; control epoch %.0f s over %d day(s), seed %d\n",
		r.Spec.RoomCapacityJPerKPerKW/1000, r.Spec.RecoveryTauS, r.Spec.StepS, r.Spec.Days, r.Spec.Seed)
	for _, sc := range r.Scenarios {
		fmt.Fprintf(&b, "  scenario %s: %d events", sc.Scenario, sc.Events)
		if !math.IsNaN(sc.TripAtS) {
			fmt.Fprintf(&b, ", first chiller trip at %.1f h", sc.TripAtS/3600)
		}
		fmt.Fprintln(&b)
		fmt.Fprintf(&b, "    %-18s %13s %13s %13s %10s %8s %10s\n",
			"arm", "throttled", "shed", "combined", "peak rise", "onset", "decisions")
		for _, a := range sc.Arms {
			onset := "never"
			if !math.IsNaN(a.ThrottleOnsetS) {
				onset = fmt.Sprintf("%.1f h", a.ThrottleOnsetS/3600)
			}
			decisions := "-"
			if a.Closed {
				decisions = fmt.Sprintf("%d", a.Decisions)
			}
			fmt.Fprintf(&b, "    %-18s %9.0f s-m %9.0f s-m %9.0f s-m %8.1f C %8s %10s\n",
				a.Name, a.ThrottledServerSeconds/60, a.ShedServerSeconds/60,
				a.CombinedServerSeconds/60, a.PeakInletRiseC, onset, decisions)
		}
		switch {
		case sc.AdaptiveWins:
			fmt.Fprintf(&b, "    verdict: %s under-bids every static arm (%.0f vs %.0f server-seconds, %.1f%% cheaper)\n",
				sc.BestAdaptive, sc.BestAdaptiveCombined, sc.BestStaticCombined,
				100*(1-sc.BestAdaptiveCombined/sc.BestStaticCombined))
		case sc.BestAdaptive != "" && sc.BestStatic != "":
			fmt.Fprintf(&b, "    verdict: %s rides it out cheapest (%.0f server-seconds; best adaptive %s at %.0f)\n",
				sc.BestStatic, sc.BestStaticCombined, sc.BestAdaptive, sc.BestAdaptiveCombined)
		}
	}
	return b.String()
}

// Scenario renders the one-file scenario experiment: the description's
// headline knobs, the wax-vs-bare contrast, and the controller summary
// when the file closed the loop.
func Scenario(r *core.ScenarioResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "scenario %s: %s over %d day(s) at %.0f s (%d epochs); %d racks, %d servers, %d workers\n",
		r.Name, r.Pattern, r.Days, r.StepS, r.Epochs, r.Racks, r.Servers, r.Workers)
	fmt.Fprintf(&b, "  balance %s", r.Balance)
	if r.Autoscale != "" {
		fmt.Fprintf(&b, ", autoscale %s (%d decisions)", r.Autoscale, r.Decisions)
	}
	if r.FaultEvents > 0 {
		fmt.Fprintf(&b, "; %d fault events", r.FaultEvents)
		if !math.IsNaN(r.TripAtS) {
			fmt.Fprintf(&b, ", first chiller trip at %.1f h", r.TripAtS/3600)
		}
	}
	fmt.Fprintln(&b)
	onset := func(s float64) string {
		if math.IsNaN(s) {
			return "never"
		}
		return fmt.Sprintf("%.1f h", s/3600)
	}
	row := func(label string, v core.ScenarioRun) {
		fmt.Fprintf(&b, "  %-6s peak cooling %8.1f kW, throttled %8.0f s-min, shed %8.0f s-min, onset %s, peak rise %.1f C\n",
			label, v.PeakCoolingW/1000, v.ThrottledServerSeconds/60, v.ShedServerSeconds/60,
			onset(v.ThrottleOnsetS), v.PeakInletRiseC)
	}
	row("wax", r.Wax)
	row("bare", r.NoWax)
	fmt.Fprintf(&b, "  wax shaved %.1f kW off the cooling peak (%.1f%%), melted to %.0f%% at worst, absorbed %.1f MJ\n",
		r.PeakShavedW/1000, r.PeakShavedPct, 100*r.Wax.PeakWaxLiquid, r.Wax.AbsorbedJ/1e6)
	if !math.IsNaN(r.ExtensionS) && r.ExtensionS != 0 {
		fmt.Fprintf(&b, "  ride-through extension from the retrofit: %.1f min\n", r.ExtensionS/60)
	}
	return b.String()
}

// Faults renders the fault-injection experiment: the scenario replayed,
// then one block per policy comparing the wax and no-wax fleets' ride-
// through and degradation totals.
func Faults(r *core.FaultResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "faults: %d racks, %d servers, %d workers, %d scheduled events\n",
		r.Racks, r.Servers, r.Workers, len(r.Events))
	for _, e := range r.Events {
		fmt.Fprintf(&b, "  scenario: %s\n", e)
	}
	onset := func(s float64) string {
		if math.IsNaN(s) {
			return "never"
		}
		return fmt.Sprintf("%.1f min", s/60)
	}
	for _, p := range r.Policies {
		fmt.Fprintf(&b, "  %s:\n", p.Policy)
		if !math.IsNaN(r.TripAtS) {
			fmt.Fprintf(&b, "    time to first throttle after the %.1f h trip: no-wax %s | wax %s",
				r.TripAtS/3600, onset(p.NoWaxRideThroughS), onset(p.WaxRideThroughS))
			if !math.IsNaN(p.ExtensionS) {
				fmt.Fprintf(&b, " (+%.1f min from the wax)", p.ExtensionS/60)
			}
			fmt.Fprintln(&b)
		} else {
			fmt.Fprintf(&b, "    first throttle: no-wax %s | wax %s\n",
				onset(p.NoWaxOnsetS), onset(p.WaxOnsetS))
		}
		fmt.Fprintf(&b, "    throttled: no-wax %.0f server-min | wax %.0f server-min; peak inlet rise %.1f degC\n",
			p.NoWaxThrottledServerSeconds/60, p.WaxThrottledServerSeconds/60, p.PeakInletRiseC)
		fmt.Fprintf(&b, "    shed: no-wax %.0f server-min | wax %.0f server-min\n",
			p.NoWaxShedServerSeconds/60, p.WaxShedServerSeconds/60)
	}
	return b.String()
}
