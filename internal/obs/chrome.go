package obs

import (
	"encoding/json"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
)

// SpanRecord is one completed span occurrence, kept only while span
// tracing is enabled. Times are nanoseconds since tracing was enabled.
type SpanRecord struct {
	Path    string
	StartNs int64
	DurNs   int64
	SimS    float64
}

// spanTrace is a bounded ring of completed span records. SpanStats
// aggregates per path; the trace keeps the individual occurrences the
// Chrome trace-event export needs.
type spanTrace struct {
	mu      sync.Mutex
	epoch   time.Time
	buf     []SpanRecord
	next    int
	dropped uint64
}

// EnableSpanTrace starts recording individual span occurrences into a
// ring retaining the last capacity records (minimum 1, default 65536 for
// capacity <= 0). Until this is called span tracing costs nothing; spans
// already live when it is called are recorded at End with their full
// duration. Calling it again resets the ring.
func (r *Registry) EnableSpanTrace(capacity int) {
	if r == nil {
		return
	}
	if capacity <= 0 {
		capacity = 65536
	}
	t := &spanTrace{epoch: time.Now(), buf: make([]SpanRecord, 0, capacity)}
	r.mu.Lock()
	r.trace = t
	r.mu.Unlock()
}

// spanTracer returns the live trace collector, or nil.
func (r *Registry) spanTracer() *spanTrace {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.trace
}

// record appends one completed span, overwriting the oldest when full.
func (t *spanTrace) record(path string, start time.Time, durNs int64, simS float64) {
	startNs := start.Sub(t.epoch).Nanoseconds()
	if startNs < 0 {
		startNs = 0
	}
	rec := SpanRecord{Path: path, StartNs: startNs, DurNs: durNs, SimS: simS}
	t.mu.Lock()
	if len(t.buf) < cap(t.buf) {
		t.buf = append(t.buf, rec)
	} else {
		t.buf[t.next] = rec
		t.next = (t.next + 1) % cap(t.buf)
		t.dropped++
	}
	t.mu.Unlock()
}

// SpanTrace returns the retained span records ordered by start time, or
// nil when span tracing was never enabled.
func (r *Registry) SpanTrace() []SpanRecord {
	t := r.spanTracer()
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := make([]SpanRecord, 0, len(t.buf))
	if len(t.buf) == cap(t.buf) && t.next > 0 {
		out = append(out, t.buf[t.next:]...)
		out = append(out, t.buf[:t.next]...)
	} else {
		out = append(out, t.buf...)
	}
	t.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool { return out[i].StartNs < out[j].StartNs })
	return out
}

// chromeEvent is one entry of the Chrome trace-event format ("X" complete
// events plus "M" metadata), loadable in chrome://tracing and Perfetto.
type chromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Phase string         `json:"ph"`
	TsUs  float64        `json:"ts"`
	DurUs float64        `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Args  map[string]any `json:"args,omitempty"`
}

// chromeTrace is the containing JSON object.
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace writes the retained span records in the Chrome
// trace-event JSON format. Spans are grouped into tracks ("threads") by
// their top-level path segment, so nested simulation phases stack
// naturally in the viewer; each track gets a thread_name metadata record.
// Writing with span tracing disabled emits an empty trace.
func (r *Registry) WriteChromeTrace(w io.Writer) error {
	recs := r.SpanTrace()
	tidOf := map[string]int{}
	var tracks []string
	for _, rec := range recs {
		top, _, _ := strings.Cut(rec.Path, "/")
		if _, ok := tidOf[top]; !ok {
			tidOf[top] = 0 // assigned after sorting
			tracks = append(tracks, top)
		}
	}
	sort.Strings(tracks)
	for i, name := range tracks {
		tidOf[name] = i + 1
	}

	out := chromeTrace{TraceEvents: []chromeEvent{}, DisplayTimeUnit: "ms"}
	for _, name := range tracks {
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name:  "thread_name",
			Phase: "M",
			PID:   1,
			TID:   tidOf[name],
			Args:  map[string]any{"name": name},
		})
	}
	for _, rec := range recs {
		top, _, _ := strings.Cut(rec.Path, "/")
		ev := chromeEvent{
			Name:  rec.Path,
			Cat:   "sim",
			Phase: "X",
			TsUs:  float64(rec.StartNs) / 1e3,
			DurUs: float64(rec.DurNs) / 1e3,
			PID:   1,
			TID:   tidOf[top],
		}
		if rec.SimS != 0 {
			ev.Args = map[string]any{"sim_seconds": rec.SimS}
		}
		out.TraceEvents = append(out.TraceEvents, ev)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}
