package obs

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

func TestSpanTraceRecordsOccurrences(t *testing.T) {
	reg := New()
	// Before enabling, spans cost nothing and record nothing.
	reg.StartSpan("warmup").End()
	if got := reg.SpanTrace(); got != nil {
		t.Fatalf("trace before enable = %v, want nil", got)
	}

	reg.EnableSpanTrace(8)
	for i := 0; i < 3; i++ {
		sp := reg.StartSpan("fleet.run")
		sp.AddSimTime(60)
		child := sp.Child("shard")
		child.End()
		sp.End()
	}
	recs := reg.SpanTrace()
	if len(recs) != 6 {
		t.Fatalf("got %d records, want 6", len(recs))
	}
	var runs, shards int
	for i, r := range recs {
		switch r.Path {
		case "fleet.run":
			runs++
			if r.SimS != 60 {
				t.Errorf("fleet.run sim %v, want 60", r.SimS)
			}
		case "fleet.run/shard":
			shards++
		default:
			t.Errorf("unexpected path %q", r.Path)
		}
		if r.StartNs < 0 || r.DurNs < 0 {
			t.Errorf("record %d has negative times: %+v", i, r)
		}
		if i > 0 && recs[i-1].StartNs > r.StartNs {
			t.Errorf("records not ordered by start: %d after %d", r.StartNs, recs[i-1].StartNs)
		}
	}
	if runs != 3 || shards != 3 {
		t.Errorf("runs=%d shards=%d, want 3/3", runs, shards)
	}
}

func TestSpanTraceRingOverwrite(t *testing.T) {
	reg := New()
	reg.EnableSpanTrace(2)
	reg.StartSpan("a").End()
	time.Sleep(time.Millisecond)
	reg.StartSpan("b").End()
	time.Sleep(time.Millisecond)
	reg.StartSpan("c").End()
	recs := reg.SpanTrace()
	if len(recs) != 2 {
		t.Fatalf("got %d records, want 2", len(recs))
	}
	if recs[0].Path != "b" || recs[1].Path != "c" {
		t.Errorf("ring kept %q,%q; want the newest b,c", recs[0].Path, recs[1].Path)
	}
}

func TestWriteChromeTrace(t *testing.T) {
	reg := New()
	reg.EnableSpanTrace(0)
	sp := reg.StartSpan("core.fleet_study")
	sp.AddSimTime(120)
	sp.Child("derive").End()
	sp.End()
	reg.StartSpan("serve/fleet").End()

	var buf bytes.Buffer
	if err := reg.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []struct {
			Name  string         `json:"name"`
			Phase string         `json:"ph"`
			TID   int            `json:"tid"`
			Args  map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if out.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", out.DisplayTimeUnit)
	}
	var meta, complete int
	tids := map[string]int{}
	for _, e := range out.TraceEvents {
		switch e.Phase {
		case "M":
			meta++
		case "X":
			complete++
			tids[e.Name] = e.TID
		default:
			t.Errorf("unexpected phase %q", e.Phase)
		}
	}
	// Two top-level tracks (core.fleet_study, serve) -> two metadata
	// records; three completed spans.
	if meta != 2 || complete != 3 {
		t.Errorf("meta=%d complete=%d, want 2/3", meta, complete)
	}
	if tids["core.fleet_study"] != tids["core.fleet_study/derive"] {
		t.Error("nested span landed on a different track than its parent")
	}
	if tids["core.fleet_study"] == tids["serve/fleet"] {
		t.Error("distinct top-level paths shared a track")
	}
}

func TestWriteChromeTraceDisabled(t *testing.T) {
	reg := New()
	var buf bytes.Buffer
	if err := reg.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte(`"traceEvents":[]`)) {
		t.Errorf("disabled trace = %s, want empty traceEvents", buf.String())
	}
}
