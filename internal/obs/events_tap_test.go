package obs

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestTapObservesRecords(t *testing.T) {
	l := NewEventLog(4)
	var got []Event
	cancel := l.Tap(func(e Event) { got = append(got, e) })
	l.Record(1, "a", "x", 10, 0)
	l.Record(2, "b", "y", 20, 0)
	if len(got) != 2 || got[0].Kind != "a" || got[1].Kind != "b" {
		t.Fatalf("tap saw %+v", got)
	}
	if got[0].Seq != 1 || got[1].Seq != 2 {
		t.Errorf("sequence numbers %d, %d", got[0].Seq, got[1].Seq)
	}
	cancel()
	l.Record(3, "c", "z", 30, 0)
	if len(got) != 2 {
		t.Errorf("tap still firing after cancel: %d events", len(got))
	}
}

func TestTapSeesOverwrittenEvents(t *testing.T) {
	// The ring keeps only the last event, but taps see every record.
	l := NewEventLog(1)
	var n int
	defer l.Tap(func(Event) { n++ })()
	for i := 0; i < 10; i++ {
		l.Record(float64(i), "k", "", 0, 0)
	}
	if n != 10 {
		t.Errorf("tap saw %d of 10 records", n)
	}
	if l.Len() != 1 {
		t.Errorf("ring retained %d, want 1", l.Len())
	}
}

func TestMultipleTapsAndCancelOne(t *testing.T) {
	l := NewEventLog(4)
	var a, b int
	cancelA := l.Tap(func(Event) { a++ })
	cancelB := l.Tap(func(Event) { b++ })
	l.Record(1, "k", "", 0, 0)
	cancelA()
	l.Record(2, "k", "", 0, 0)
	cancelB()
	if a != 1 || b != 2 {
		t.Errorf("a=%d b=%d, want 1, 2", a, b)
	}
}

func TestTapNilSafety(t *testing.T) {
	var l *EventLog
	cancel := l.Tap(func(Event) {})
	cancel() // must not panic
	full := NewEventLog(1)
	cancel = full.Tap(nil)
	cancel()
	full.Record(0, "k", "", 0, 0) // nil tap must not be invoked
}

func TestTapConcurrentRecorders(t *testing.T) {
	l := NewEventLog(8)
	var n atomic.Int64
	defer l.Tap(func(Event) { n.Add(1) })()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				l.Record(0, "k", "", 0, 0)
			}
		}()
	}
	wg.Wait()
	if n.Load() != 800 {
		t.Errorf("tap saw %d of 800 records", n.Load())
	}
	if l.Total() != 800 {
		t.Errorf("total = %d", l.Total())
	}
}

// TestTapMayQueryLog pins the no-deadlock contract: a tap runs outside
// the log's lock and may call back into it.
func TestTapMayQueryLog(t *testing.T) {
	l := NewEventLog(4)
	var totals []uint64
	defer l.Tap(func(Event) { totals = append(totals, l.Total()) })()
	l.Record(1, "k", "", 0, 0)
	l.Record(2, "k", "", 0, 0)
	if len(totals) != 2 || totals[0] != 1 || totals[1] != 2 {
		t.Errorf("totals from inside tap = %v", totals)
	}
}
