package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"sync"
	"testing"
)

// Concurrent hammering of every instrument type through the registry;
// run under -race this doubles as the data-race check.
func TestConcurrentInstruments(t *testing.T) {
	reg := New()
	const (
		workers = 8
		perW    = 5000
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := reg.Counter("hammer.count")
			g := reg.Gauge("hammer.gauge")
			h := reg.Histogram("hammer.hist", LinearBuckets(10, 10, 10))
			for i := 0; i < perW; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i % 100))
				reg.Events().Record(float64(i), "hammer", "w", float64(w), 0)
				sp := reg.StartSpan("hammer.span")
				sp.AddSimTime(1)
				sp.End()
			}
		}()
	}
	wg.Wait()

	const total = workers * perW
	if got := reg.Counter("hammer.count").Value(); got != total {
		t.Errorf("counter = %d, want %d", got, total)
	}
	if got := reg.Gauge("hammer.gauge").Value(); got != total {
		t.Errorf("gauge = %v, want %d", got, total)
	}
	h := reg.Histogram("hammer.hist", nil)
	if h.Count() != total {
		t.Errorf("histogram count = %d, want %d", h.Count(), total)
	}
	wantSum := float64(workers*perW/100) * (99 * 100 / 2)
	if math.Abs(h.Sum()-wantSum) > 1e-6 {
		t.Errorf("histogram sum = %v, want %v", h.Sum(), wantSum)
	}
	snap := reg.Snapshot()
	if sp := snap.Spans["hammer.span"]; sp.Count != total || sp.SimSeconds != total {
		t.Errorf("span stats = %+v, want count/sim %d", sp, total)
	}
	if snap.EventsTotal != total {
		t.Errorf("events total = %d, want %d", snap.EventsTotal, total)
	}
	if snap.EventsRetained != DefaultEventCapacity {
		t.Errorf("events retained = %d, want %d", snap.EventsRetained, DefaultEventCapacity)
	}
}

func TestSpanNesting(t *testing.T) {
	reg := New()
	parent := reg.StartSpan("exp")
	child := parent.Child("solve")
	grand := child.Child("sweep")
	if got := grand.Path(); got != "exp/solve/sweep" {
		t.Errorf("nested path = %q", got)
	}
	grand.AddSimTime(10)
	grand.End()
	grand.End() // double End is a no-op
	child.End()
	parent.AddSimTime(100)
	parent.End()

	snap := reg.Snapshot()
	for _, path := range []string{"exp", "exp/solve", "exp/solve/sweep"} {
		if snap.Spans[path].Count != 1 {
			t.Errorf("span %q count = %d, want 1", path, snap.Spans[path].Count)
		}
	}
	if snap.Spans["exp/solve/sweep"].SimSeconds != 10 {
		t.Errorf("grandchild sim seconds = %v", snap.Spans["exp/solve/sweep"].SimSeconds)
	}
	if snap.Spans["exp"].SimSeconds != 100 {
		t.Errorf("parent sim seconds = %v", snap.Spans["exp"].SimSeconds)
	}
	// Wall time must not shrink inward-out: parent spans at least as long
	// as the child it wraps.
	if snap.Spans["exp"].WallSeconds < snap.Spans["exp/solve/sweep"].WallSeconds {
		t.Error("parent wall time shorter than child's")
	}
}

// The disabled fast path — every instrument reached through a nil
// registry — must not allocate: hot solver loops stay instrumented
// unconditionally.
func TestDisabledPathAllocationFree(t *testing.T) {
	var reg *Registry
	allocs := testing.AllocsPerRun(1000, func() {
		reg.Counter("c").Add(1)
		reg.Counter("c").Inc()
		reg.Gauge("g").Set(1)
		reg.Gauge("g").Add(1)
		reg.Histogram("h", nil).Observe(1)
		reg.Events().Record(0, "k", "n", 1, 2)
		sp := reg.StartSpan("s")
		sp.AddSimTime(1)
		sp.Child("c").End()
		sp.End()
		_ = reg.Counter("c").Value()
		_ = reg.Histogram("h", nil).Quantile(0.5)
	})
	if allocs != 0 {
		t.Errorf("disabled path allocates %v per op, want 0", allocs)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := newHistogram(LinearBuckets(10, 10, 10))
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}
	for _, tc := range []struct{ q, want, tol float64 }{
		{0, 1, 0}, {1, 100, 0}, {0.5, 50, 10}, {0.9, 90, 10}, {0.99, 99, 10},
	} {
		if got := h.Quantile(tc.q); math.Abs(got-tc.want) > tc.tol {
			t.Errorf("q%.2f = %v, want %v +/- %v", tc.q, got, tc.want, tc.tol)
		}
	}
	if got := h.Quantile(0.5); got < 1 || got > 100 {
		t.Errorf("quantile %v outside observed range", got)
	}
	var empty *Histogram
	if empty.Quantile(0.5) != 0 || empty.Count() != 0 {
		t.Error("nil histogram not zero-valued")
	}
}

func TestEventLogRing(t *testing.T) {
	l := NewEventLog(4)
	for i := 1; i <= 10; i++ {
		l.Record(float64(i), "k", "", float64(i), 0)
	}
	if l.Total() != 10 || l.Len() != 4 {
		t.Fatalf("total=%d len=%d, want 10/4", l.Total(), l.Len())
	}
	evs := l.Events()
	for i, e := range evs {
		if want := uint64(7 + i); e.Seq != want {
			t.Errorf("event %d seq = %d, want %d (chronological tail)", i, e.Seq, want)
		}
	}
	var buf bytes.Buffer
	if err := l.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	if lines := bytes.Count(buf.Bytes(), []byte("\n")); lines != 4 {
		t.Errorf("JSONL lines = %d, want 4", lines)
	}
}

func TestExpositionJSONValid(t *testing.T) {
	reg := NewWithEventCapacity(8)
	reg.Counter("a.count").Add(3)
	reg.Gauge("a.gauge").Set(2.5)
	reg.Histogram("a.hist", nil).Observe(7)
	sp := reg.StartSpan("a.span")
	sp.AddSimTime(3600)
	sp.End()
	reg.Events().Record(1, "a.ev", "x", 1, 2)

	var buf bytes.Buffer
	if err := reg.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal(buf.Bytes(), &snap); err != nil {
		t.Fatalf("exposition is not valid JSON: %v\n%s", err, buf.String())
	}
	if snap.Counters["a.count"] != 3 || snap.Gauges["a.gauge"] != 2.5 {
		t.Errorf("roundtrip lost values: %+v", snap)
	}
	if snap.Spans["a.span"].SimSeconds != 3600 {
		t.Errorf("span sim seconds = %v", snap.Spans["a.span"].SimSeconds)
	}
	buf.Reset()
	if err := reg.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Error("text exposition empty")
	}
	// An empty-but-real registry still writes valid JSON.
	buf.Reset()
	if err := New().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(buf.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
}
