// Package obs is the study's telemetry layer: a concurrency-safe metrics
// registry (counters, gauges, fixed-bucket histograms), lightweight
// hierarchical spans that relate wall time to simulated time, and a ring
// buffer of simulation events for post-hoc debugging.
//
// Every entry point is nil-safe: methods on a nil *Registry (and on the
// nil instruments it hands out) are allocation-free no-ops, so hot paths
// can be instrumented unconditionally and pay only a nil check when
// telemetry is disabled. Instruments returned by the registry are stable
// pointers — resolve them once outside a loop and hammer them from any
// number of goroutines.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// DefaultEventCapacity is the ring-buffer size used by New.
const DefaultEventCapacity = 4096

// Registry owns every named instrument of one run. Instrument maps are
// keyed by series key: the bare name for unlabeled instruments, or
// name{k="v",...} (labels sorted by key) for labeled ones.
type Registry struct {
	mu     sync.RWMutex
	counts map[string]*Counter
	gauges map[string]*Gauge
	hists  map[string]*Histogram
	spans  map[string]*SpanStats
	labels map[string]labeledSeries // series key -> decomposition, labeled only
	events *EventLog

	trace *spanTrace // nil until EnableSpanTrace
}

// Label is one key/value dimension of a labeled instrument.
type Label struct{ Key, Value string }

// labeledSeries remembers how a labeled series key decomposes, so the
// Prometheus exposition can emit the base name and label pairs without
// re-parsing the key.
type labeledSeries struct {
	base   string
	labels []Label // sorted by key
}

// New returns an empty registry with the default event-log capacity.
func New() *Registry { return NewWithEventCapacity(DefaultEventCapacity) }

// NewWithEventCapacity returns an empty registry whose event ring buffer
// retains the last capacity events (minimum 1).
func NewWithEventCapacity(capacity int) *Registry {
	return &Registry{
		counts: make(map[string]*Counter),
		gauges: make(map[string]*Gauge),
		hists:  make(map[string]*Histogram),
		spans:  make(map[string]*SpanStats),
		labels: make(map[string]labeledSeries),
		events: NewEventLog(capacity),
	}
}

// seriesKey builds the canonical series key for name plus labels: the bare
// name when labels are empty, else name{k="v",...} with labels sorted by
// key. The sorted slice is returned so callers can retain it.
func seriesKey(name string, labels []Label) (string, []Label) {
	if len(labels) == 0 {
		return name, nil
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b []byte
	b = append(b, name...)
	b = append(b, '{')
	for i, l := range ls {
		if i > 0 {
			b = append(b, ',')
		}
		b = append(b, l.Key...)
		b = append(b, '=', '"')
		b = append(b, l.Value...)
		b = append(b, '"')
	}
	b = append(b, '}')
	return string(b), ls
}

// recordLabels indexes a labeled series key; callers hold r.mu.
func (r *Registry) recordLabels(key, base string, labels []Label) {
	if len(labels) == 0 {
		return
	}
	if _, ok := r.labels[key]; !ok {
		r.labels[key] = labeledSeries{base: base, labels: labels}
	}
}

// Counter returns (creating on first use) the named counter; nil registry
// yields a nil counter whose methods are no-ops.
func (r *Registry) Counter(name string) *Counter { return r.CounterWith(name) }

// CounterWith returns (creating on first use) the counter for name plus
// the given label dimensions. Equal label sets — regardless of argument
// order — resolve to the same series.
func (r *Registry) CounterWith(name string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	key, ls := seriesKey(name, labels)
	r.mu.RLock()
	c := r.counts[key]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c := r.counts[key]; c != nil {
		return c
	}
	c = &Counter{}
	r.counts[key] = c
	r.recordLabels(key, name, ls)
	return c
}

// Gauge returns (creating on first use) the named gauge.
func (r *Registry) Gauge(name string) *Gauge { return r.GaugeWith(name) }

// GaugeWith returns (creating on first use) the gauge for name plus the
// given label dimensions.
func (r *Registry) GaugeWith(name string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	key, ls := seriesKey(name, labels)
	r.mu.RLock()
	g := r.gauges[key]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g := r.gauges[key]; g != nil {
		return g
	}
	g = &Gauge{}
	r.gauges[key] = g
	r.recordLabels(key, name, ls)
	return g
}

// Histogram returns (creating on first use) the named histogram. The
// bucket upper bounds must be sorted ascending; nil selects a default
// exponential ladder. Bounds are fixed at creation: later calls with a
// different layout return the existing histogram unchanged.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	return r.HistogramWith(name, bounds)
}

// HistogramWith is Histogram with label dimensions.
func (r *Registry) HistogramWith(name string, bounds []float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	key, ls := seriesKey(name, labels)
	r.mu.RLock()
	h := r.hists[key]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h := r.hists[key]; h != nil {
		return h
	}
	h = newHistogram(bounds)
	r.hists[key] = h
	r.recordLabels(key, name, ls)
	return h
}

// Events returns the registry's event ring buffer (nil for a nil
// registry).
func (r *Registry) Events() *EventLog {
	if r == nil {
		return nil
	}
	return r.events
}

// Counter is a monotonically increasing atomic count.
type Counter struct{ v atomic.Int64 }

// Add increases the counter by delta.
func (c *Counter) Add(delta int64) {
	if c == nil {
		return
	}
	c.v.Add(delta)
}

// Inc increases the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 for nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic float64 instantaneous value.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add increments the gauge by delta (CAS loop).
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the stored value (0 for nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// defaultBounds is an exponential ladder 1, 2, 4, ... 2048 covering the
// typical sweep/step counts the study records.
var defaultBounds = ExponentialBuckets(1, 2, 12)

// LinearBuckets returns n upper bounds start, start+width, ...
func LinearBuckets(start, width float64, n int) []float64 {
	if n <= 0 {
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = start + float64(i)*width
	}
	return out
}

// ExponentialBuckets returns n upper bounds start, start*factor, ...
func ExponentialBuckets(start, factor float64, n int) []float64 {
	if n <= 0 || start <= 0 || factor <= 1 {
		return nil
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// Histogram counts observations into fixed buckets and keeps sum, count,
// min and max for quantile summaries. All updates are lock-free.
type Histogram struct {
	bounds  []float64 // sorted upper bounds; observations above fall in overflow
	buckets []atomic.Int64
	over    atomic.Int64
	count   atomic.Int64
	sum     atomicFloat
	min     atomicFloat
	max     atomicFloat
}

func newHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = defaultBounds
	}
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	h := &Histogram{bounds: bs, buckets: make([]atomic.Int64, len(bs))}
	h.min.Store(math.Inf(1))
	h.max.Store(math.Inf(-1))
	return h
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	if i < len(h.buckets) {
		h.buckets[i].Add(1)
	} else {
		h.over.Add(1)
	}
	h.count.Add(1)
	h.sum.Add(v)
	h.min.StoreMin(v)
	h.max.StoreMax(v)
}

// Count returns the number of observations (0 for nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observations (0 for nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Quantile estimates the q-quantile (q in [0, 1]) by linear interpolation
// inside the holding bucket, clamped to the observed min/max. It returns 0
// when the histogram is empty or nil.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	lo, hi := h.min.Load(), h.max.Load()
	if q <= 0 {
		return lo
	}
	if q >= 1 {
		return hi
	}
	target := q * float64(n)
	cum := 0.0
	lower := lo
	for i := range h.buckets {
		c := float64(h.buckets[i].Load())
		upper := math.Min(h.bounds[i], hi)
		if upper < lower {
			upper = lower
		}
		if c > 0 && cum+c >= target {
			return clamp(lower+(target-cum)/c*(upper-lower), lo, hi)
		}
		cum += c
		if c > 0 {
			lower = upper
		}
	}
	// Overflow bucket: between the last bound and the max.
	c := float64(h.over.Load())
	if c > 0 {
		return clamp(lower+(target-cum)/c*(hi-lower), lo, hi)
	}
	return hi
}

func clamp(v, lo, hi float64) float64 { return math.Max(lo, math.Min(hi, v)) }

// atomicFloat is a float64 with atomic add and monotone min/max updates.
type atomicFloat struct{ bits atomic.Uint64 }

func (f *atomicFloat) Store(v float64) { f.bits.Store(math.Float64bits(v)) }
func (f *atomicFloat) Load() float64   { return math.Float64frombits(f.bits.Load()) }

func (f *atomicFloat) Add(v float64) {
	for {
		old := f.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

func (f *atomicFloat) StoreMin(v float64) {
	for {
		old := f.bits.Load()
		if math.Float64frombits(old) <= v {
			return
		}
		if f.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

func (f *atomicFloat) StoreMax(v float64) {
	for {
		old := f.bits.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if f.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// ---------------------------------------------------------------------------
// Exposition.

// Snapshot is a point-in-time copy of every instrument, shaped for JSON.
type Snapshot struct {
	Counters       map[string]int64             `json:"counters,omitempty"`
	Gauges         map[string]float64           `json:"gauges,omitempty"`
	Histograms     map[string]HistogramSnapshot `json:"histograms,omitempty"`
	Spans          map[string]SpanSnapshot      `json:"spans,omitempty"`
	EventsTotal    uint64                       `json:"events_total"`
	EventsRetained int                          `json:"events_retained"`
}

// HistogramSnapshot summarizes one histogram.
type HistogramSnapshot struct {
	Count    int64         `json:"count"`
	Sum      float64       `json:"sum"`
	Min      float64       `json:"min"`
	Max      float64       `json:"max"`
	Mean     float64       `json:"mean"`
	P50      float64       `json:"p50"`
	P90      float64       `json:"p90"`
	P99      float64       `json:"p99"`
	Buckets  []BucketCount `json:"buckets,omitempty"`
	Overflow int64         `json:"overflow,omitempty"`
}

// BucketCount is one bucket (upper bound, observations at or below it that
// fell past the previous bound).
type BucketCount struct {
	LE    float64 `json:"le"`
	Count int64   `json:"count"`
}

// Snapshot copies every instrument; safe under concurrent updates (each
// instrument is read atomically, the set of instruments under the lock).
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{}
	if r == nil {
		return s
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.counts) > 0 {
		s.Counters = make(map[string]int64, len(r.counts))
		for name, c := range r.counts {
			s.Counters[name] = c.Value()
		}
	}
	if len(r.gauges) > 0 {
		s.Gauges = make(map[string]float64, len(r.gauges))
		for name, g := range r.gauges {
			s.Gauges[name] = g.Value()
		}
	}
	if len(r.hists) > 0 {
		s.Histograms = make(map[string]HistogramSnapshot, len(r.hists))
		for name, h := range r.hists {
			s.Histograms[name] = h.snapshot()
		}
	}
	if len(r.spans) > 0 {
		s.Spans = make(map[string]SpanSnapshot, len(r.spans))
		for name, sp := range r.spans {
			s.Spans[name] = sp.snapshot()
		}
	}
	s.EventsTotal = r.events.Total()
	s.EventsRetained = r.events.Len()
	return s
}

func (h *Histogram) snapshot() HistogramSnapshot {
	out := HistogramSnapshot{Count: h.count.Load(), Sum: h.sum.Load()}
	if out.Count > 0 {
		out.Min = h.min.Load()
		out.Max = h.max.Load()
		out.Mean = out.Sum / float64(out.Count)
		out.P50 = h.Quantile(0.5)
		out.P90 = h.Quantile(0.9)
		out.P99 = h.Quantile(0.99)
	}
	for i, b := range h.bounds {
		if c := h.buckets[i].Load(); c > 0 {
			out.Buckets = append(out.Buckets, BucketCount{LE: b, Count: c})
		}
	}
	out.Overflow = h.over.Load()
	return out
}

// WriteJSON writes the snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// WriteText writes a sorted, line-oriented exposition for terminals.
func (r *Registry) WriteText(w io.Writer) error {
	s := r.Snapshot()
	var lines []string
	for name, v := range s.Counters {
		lines = append(lines, fmt.Sprintf("counter %-44s %d", name, v))
	}
	for name, v := range s.Gauges {
		lines = append(lines, fmt.Sprintf("gauge   %-44s %g", name, v))
	}
	for name, h := range s.Histograms {
		lines = append(lines, fmt.Sprintf(
			"hist    %-44s count=%d mean=%.3g p50=%.3g p90=%.3g p99=%.3g min=%.3g max=%.3g",
			name, h.Count, h.Mean, h.P50, h.P90, h.P99, h.Min, h.Max))
	}
	for name, sp := range s.Spans {
		lines = append(lines, fmt.Sprintf(
			"span    %-44s count=%d wall=%.3fs sim=%.0fs sim/wall=%.3g",
			name, sp.Count, sp.WallSeconds, sp.SimSeconds, sp.SimPerWall))
	}
	sort.Strings(lines)
	for _, l := range lines {
		if _, err := fmt.Fprintln(w, l); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "events  total=%d retained=%d\n", s.EventsTotal, s.EventsRetained)
	return err
}
