package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// WritePrometheus writes every instrument in the Prometheus text
// exposition format (version 0.0.4): one # HELP and # TYPE comment per
// metric family, then the family's series sorted by label set. Instrument
// names are sanitized into the Prometheus charset ('.' and any other
// illegal rune become '_'), labeled series keep their label dimensions,
// histograms expose cumulative _bucket/_sum/_count series, and spans
// surface as three counters (_spans_total, _wall_seconds_total,
// _sim_seconds_total). A nil registry writes nothing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}

	// Gather under the read lock: series key -> decomposition + value.
	type series struct {
		labels []Label
		value  float64
		hist   *HistogramSnapshot
	}
	type family struct {
		name   string // sanitized Prometheus name
		help   string // the original instrument name
		typ    string
		series []series
	}
	families := map[string]*family{}
	add := func(key, typ, suffix string, value float64, hist *HistogramSnapshot, extra ...Label) {
		base, labels := key, []Label(nil)
		if ls, ok := r.labels[key]; ok {
			base, labels = ls.base, ls.labels
		}
		name := sanitizeMetricName(base) + suffix
		f := families[name+"\x00"+typ]
		if f == nil {
			f = &family{name: name, help: base, typ: typ}
			families[name+"\x00"+typ] = f
		}
		if len(extra) > 0 {
			labels = append(append([]Label(nil), labels...), extra...)
		}
		f.series = append(f.series, series{labels: labels, value: value, hist: hist})
	}

	r.mu.RLock()
	for key, c := range r.counts {
		add(key, "counter", "", float64(c.Value()), nil)
	}
	for key, g := range r.gauges {
		add(key, "gauge", "", g.Value(), nil)
	}
	for key, h := range r.hists {
		snap := h.snapshot()
		add(key, "histogram", "", 0, &snap)
	}
	for key, sp := range r.spans {
		snap := sp.snapshot()
		add(key, "counter", "_spans_total", float64(snap.Count), nil)
		add(key, "counter", "_wall_seconds_total", snap.WallSeconds, nil)
		add(key, "counter", "_sim_seconds_total", snap.SimSeconds, nil)
	}
	eventsTotal := r.events.Total()
	eventsRetained := r.events.Len()
	r.mu.RUnlock()

	keys := make([]string, 0, len(families))
	for k := range families {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	var b strings.Builder
	for _, k := range keys {
		f := families[k]
		sort.Slice(f.series, func(i, j int) bool {
			return formatLabels(f.series[i].labels) < formatLabels(f.series[j].labels)
		})
		fmt.Fprintf(&b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.typ)
		for _, s := range f.series {
			if f.typ == "histogram" {
				writePromHistogram(&b, f.name, s.labels, s.hist)
				continue
			}
			fmt.Fprintf(&b, "%s%s %s\n", f.name, formatLabels(s.labels), formatPromValue(s.value))
		}
	}
	fmt.Fprintf(&b, "# HELP obs_events_total simulation events recorded\n")
	fmt.Fprintf(&b, "# TYPE obs_events_total counter\n")
	fmt.Fprintf(&b, "obs_events_total %d\n", eventsTotal)
	fmt.Fprintf(&b, "# HELP obs_events_retained simulation events retained in the ring buffer\n")
	fmt.Fprintf(&b, "# TYPE obs_events_retained gauge\n")
	fmt.Fprintf(&b, "obs_events_retained %d\n", eventsRetained)

	_, err := io.WriteString(w, b.String())
	return err
}

// writePromHistogram emits the cumulative bucket ladder plus sum and
// count for one histogram series.
func writePromHistogram(b *strings.Builder, name string, labels []Label, h *HistogramSnapshot) {
	cum := int64(0)
	for _, bk := range h.Buckets {
		cum += bk.Count
		fmt.Fprintf(b, "%s_bucket%s %d\n", name,
			formatLabels(append(append([]Label(nil), labels...), Label{"le", formatPromValue(bk.LE)})), cum)
	}
	cum += h.Overflow
	fmt.Fprintf(b, "%s_bucket%s %d\n", name,
		formatLabels(append(append([]Label(nil), labels...), Label{"le", "+Inf"})), cum)
	fmt.Fprintf(b, "%s_sum%s %s\n", name, formatLabels(labels), formatPromValue(h.Sum))
	fmt.Fprintf(b, "%s_count%s %d\n", name, formatLabels(labels), h.Count)
}

// sanitizeMetricName maps an instrument name into the Prometheus metric
// charset [a-zA-Z_:][a-zA-Z0-9_:]*.
func sanitizeMetricName(name string) string {
	if name == "" {
		return "_"
	}
	var b strings.Builder
	for i, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			b.WriteRune(c)
		case c >= '0' && c <= '9' && i > 0:
			b.WriteRune(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// sanitizeLabelName maps a label key into [a-zA-Z_][a-zA-Z0-9_]*.
func sanitizeLabelName(name string) string {
	if name == "" {
		return "_"
	}
	var b strings.Builder
	for i, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
			b.WriteRune(c)
		case c >= '0' && c <= '9' && i > 0:
			b.WriteRune(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// formatLabels renders a sorted label set as {k="v",...}, or "" when
// empty. Values are escaped per the exposition format.
func formatLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(sanitizeLabelName(l.Key))
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabelValue(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

func escapeHelp(v string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(v)
}

// formatPromValue renders a float the way Prometheus expects: shortest
// round-trip form, with the special spellings +Inf/-Inf/NaN.
func formatPromValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strings.TrimPrefix(fmt.Sprintf("%g", v), "+")
}
