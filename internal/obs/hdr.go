package obs

// HDR-style bucket ladders for latency histograms.
//
// The fixed-bucket Histogram estimates quantiles by interpolating inside
// the bucket holding the target rank, so its quantile error is bounded by
// bucket width. A plain exponential ladder (factor 2) bounds relative
// error at 100% — too coarse for a p99 worth publishing. The HDR trick
// (hdrhistogram's linear-sub-bucket layout) subdivides every power-of-two
// major bucket into a fixed number of equal-width minor buckets, bounding
// relative quantile error at 1/subBuckets while keeping the bucket count
// logarithmic in the dynamic range: range [1ms, 60s] at 16 sub-buckets is
// 16 majors x 16 minors = ~256 bounds, good for ~6% worst-case error over
// four and a half decades.

// HDRBuckets returns histogram upper bounds covering [min, max] with
// power-of-two major buckets each split into subBuckets linear minor
// buckets. min and max must be positive with max > min; subBuckets
// below 1 selects 16. The ladder starts at min and the final bound is
// >= max, so every value in range lands in a real bucket rather than
// the histogram's overflow count.
func HDRBuckets(min, max float64, subBuckets int) []float64 {
	if min <= 0 || max <= min {
		return nil
	}
	if subBuckets < 1 {
		subBuckets = 16
	}
	var out []float64
	for lo := min; lo < max; lo *= 2 {
		width := lo / float64(subBuckets)
		for i := 1; i <= subBuckets; i++ {
			b := lo + float64(i)*width
			out = append(out, b)
			if b >= max {
				return out
			}
		}
	}
	return out
}

// LatencySecondsBuckets is the serving layer's request-latency ladder:
// 500µs to 120s at 16 sub-buckets per octave (~290 buckets, <= ~6%
// relative quantile error). Shared by ttsimd's /metrics histogram and the
// ttsimload client so server- and client-side percentiles are computed on
// identical grids.
func LatencySecondsBuckets() []float64 { return HDRBuckets(0.0005, 120, 16) }
