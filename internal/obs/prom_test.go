package obs

import (
	"bytes"
	"strings"
	"testing"
)

// promTestRegistry builds a registry exercising every instrument shape
// the exposition has to render: plain and labeled counters and gauges, a
// histogram with observations, a span with sim time, and events.
func promTestRegistry(t *testing.T) *Registry {
	t.Helper()
	reg := New()
	reg.Counter("fleet.epochs").Add(42)
	reg.CounterWith("serve.runs_by_experiment", Label{"experiment", "fleet"}).Add(3)
	reg.CounterWith("serve.runs_by_experiment", Label{"experiment", "faults"}).Inc()
	reg.Gauge("pcm.liquid_fraction").Set(0.75)
	reg.GaugeWith("rack.inlet_c", Label{"rack", "0"}, Label{"class", `1U "std"`}).Set(25.5)
	h := reg.Histogram("solve.sweeps", LinearBuckets(1, 1, 4))
	for _, v := range []float64{0.5, 1.5, 2.5, 3.5, 9} {
		h.Observe(v)
	}
	sp := reg.StartSpan("fleet.run")
	sp.AddSimTime(3600)
	sp.End()
	reg.Events().Record(12, "pcm.melt_start", "1U", 0.1, 0)
	return reg
}

func TestWritePrometheusPassesLint(t *testing.T) {
	reg := promTestRegistry(t)
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if err := LintPrometheus(buf.Bytes()); err != nil {
		t.Fatalf("exposition fails its own grammar: %v\n%s", err, buf.String())
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE fleet_epochs counter",
		"fleet_epochs 42",
		`serve_runs_by_experiment{experiment="faults"} 1`,
		`serve_runs_by_experiment{experiment="fleet"} 3`,
		"# TYPE pcm_liquid_fraction gauge",
		`rack_inlet_c{class="1U \"std\"",rack="0"} 25.5`,
		"# TYPE solve_sweeps histogram",
		`solve_sweeps_bucket{le="+Inf"} 5`,
		"solve_sweeps_count 5",
		"fleet_run_spans_total 1",
		"fleet_run_sim_seconds_total 3600",
		"obs_events_total 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition lacks %q:\n%s", want, out)
		}
	}
}

func TestWritePrometheusHistogramCumulative(t *testing.T) {
	reg := New()
	h := reg.Histogram("lat", LinearBuckets(1, 1, 2)) // bounds 1, 2
	for _, v := range []float64{0.5, 0.6, 1.5, 5} {
		h.Observe(v)
	}
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`lat_bucket{le="1"} 2`,
		`lat_bucket{le="2"} 3`,
		`lat_bucket{le="+Inf"} 4`,
		"lat_count 4",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("histogram exposition lacks %q:\n%s", want, out)
		}
	}
}

func TestWritePrometheusNilRegistry(t *testing.T) {
	var reg *Registry
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Errorf("nil registry wrote %q", buf.String())
	}
}

func TestLabeledSeriesIdentity(t *testing.T) {
	reg := New()
	a := reg.CounterWith("x", Label{"a", "1"}, Label{"b", "2"})
	b := reg.CounterWith("x", Label{"b", "2"}, Label{"a", "1"})
	if a != b {
		t.Error("label order fragmented the series")
	}
	c := reg.CounterWith("x", Label{"a", "1"})
	if a == c {
		t.Error("different label sets shared a series")
	}
	if reg.Counter("x") == a {
		t.Error("unlabeled series collided with labeled one")
	}
	// Labeled series surface in Snapshot under their full key.
	snap := reg.Snapshot()
	if _, ok := snap.Counters[`x{a="1",b="2"}`]; !ok {
		t.Errorf("snapshot lacks labeled series key: %v", snap.Counters)
	}
}

func TestLintPrometheusRejects(t *testing.T) {
	cases := map[string]string{
		"bare sample without TYPE": "foo 1\n",
		"bad value":                "# TYPE foo counter\nfoo notanumber\n",
		"malformed line":           "# TYPE foo counter\nfoo{bad 1\n",
		"duplicate TYPE":           "# TYPE foo counter\n# TYPE foo gauge\nfoo 1\n",
		"duplicate HELP":           "# HELP foo a\n# HELP foo b\n# TYPE foo counter\nfoo 1\n",
		"TYPE after sample":        "# TYPE foo counter\nfoo 1\n# TYPE foo counter\n",
		"unknown type":             "# TYPE foo enum\nfoo 1\n",
		"duplicate series":         "# TYPE foo counter\nfoo 1\nfoo 2\n",
		"bad metric name":          "# TYPE foo.bar counter\n",
		"bucket without le":        "# TYPE h histogram\nh_bucket 1\n",
		"bare histogram sample":    "# TYPE h histogram\nh 1\n",
		"malformed label pair":     "# TYPE foo counter\nfoo{a=1} 1\n",
		"duplicate label":          `# TYPE foo counter` + "\n" + `foo{a="1",a="2"} 1` + "\n",
	}
	for name, in := range cases {
		if err := LintPrometheus([]byte(in)); err == nil {
			t.Errorf("%s: lint accepted %q", name, in)
		}
	}
}

func TestLintPrometheusAccepts(t *testing.T) {
	ok := `# plain comment
# HELP foo a counter
# TYPE foo counter
foo 1
foo{a="x,y",b="esc\"aped"} 2
# TYPE h histogram
h_bucket{le="1"} 1
h_bucket{le="+Inf"} 2
h_sum 3.5
h_count 2
# TYPE g gauge
g -1.5e-3 1700000000
`
	if err := LintPrometheus([]byte(ok)); err != nil {
		t.Errorf("lint rejected valid exposition: %v", err)
	}
}
