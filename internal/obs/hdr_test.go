package obs

import (
	"math"
	"testing"
)

func TestHDRBucketsShape(t *testing.T) {
	b := HDRBuckets(1, 8, 4)
	// Majors [1,2), [2,4), [4,8): minors at width major/4.
	want := []float64{1.25, 1.5, 1.75, 2, 2.5, 3, 3.5, 4, 5, 6, 7, 8}
	if len(b) != len(want) {
		t.Fatalf("len = %d (%v), want %d", len(b), b, len(want))
	}
	for i := range want {
		if math.Abs(b[i]-want[i]) > 1e-12 {
			t.Errorf("b[%d] = %g, want %g", i, b[i], want[i])
		}
	}
}

func TestHDRBucketsInvariants(t *testing.T) {
	for _, c := range []struct {
		min, max float64
		sub      int
	}{
		{0.0005, 120, 16},
		{1, 1e6, 8},
		{0.001, 1.5, 3},
		{1, 60, 0}, // 0 selects the default 16
	} {
		b := HDRBuckets(c.min, c.max, c.sub)
		if len(b) == 0 {
			t.Fatalf("HDRBuckets(%g, %g, %d) empty", c.min, c.max, c.sub)
		}
		sub := c.sub
		if sub < 1 {
			sub = 16
		}
		for i := 1; i < len(b); i++ {
			if b[i] <= b[i-1] {
				t.Fatalf("bounds not strictly increasing at %d: %g <= %g", i, b[i], b[i-1])
			}
			// Relative step bound: width <= previous bound / subBuckets.
			if step := (b[i] - b[i-1]) / b[i-1]; step > 1.0/float64(sub)+1e-9 {
				t.Fatalf("relative step %g at bound %g exceeds 1/%d", step, b[i], sub)
			}
		}
		if last := b[len(b)-1]; last < c.max {
			t.Errorf("last bound %g < max %g: tail values would overflow", last, c.max)
		}
	}
}

func TestHDRBucketsRejectsBadRange(t *testing.T) {
	for _, c := range [][2]float64{{0, 1}, {-1, 1}, {1, 1}, {2, 1}} {
		if b := HDRBuckets(c[0], c[1], 8); b != nil {
			t.Errorf("HDRBuckets(%g, %g) = %v, want nil", c[0], c[1], b)
		}
	}
}

// TestHDRQuantileAccuracy feeds a known distribution through a histogram
// on the latency ladder and checks the p50/p99 estimates stay within the
// ladder's relative-error bound.
func TestHDRQuantileAccuracy(t *testing.T) {
	h := newHistogram(LatencySecondsBuckets())
	// 10k samples spread uniformly over [1ms, 101ms]: p50 = 51ms,
	// p99 = 100ms.
	const n = 10000
	for i := 0; i < n; i++ {
		h.Observe(0.001 + 0.1*float64(i)/float64(n))
	}
	for _, c := range []struct {
		q, want float64
	}{{0.5, 0.051}, {0.99, 0.100}} {
		got := h.Quantile(c.q)
		if rel := math.Abs(got-c.want) / c.want; rel > 1.0/16 {
			t.Errorf("q%g = %g, want %g within %.1f%%", c.q, got, c.want, 100.0/16)
		}
	}
}
