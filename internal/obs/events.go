package obs

import (
	"encoding/json"
	"io"
	"sync"
)

// Event is one simulation occurrence worth keeping for post-hoc debugging:
// a PCM phase transition, a solver convergence report, a throttle
// decision. Value and Aux carry kind-specific payloads (e.g. sweep count
// and final residual for a solve).
type Event struct {
	// Seq is the global 1-based sequence number of the event.
	Seq uint64 `json:"seq"`
	// SimTimeS is the simulation clock at the event, seconds.
	SimTimeS float64 `json:"t_sim_s"`
	// Kind names the event type, dot-namespaced ("pcm.melt_start").
	Kind string `json:"kind"`
	// Name identifies the emitting object (a station, a machine class).
	Name string `json:"name,omitempty"`
	// Value and Aux are kind-specific numbers.
	Value float64 `json:"value"`
	Aux   float64 `json:"aux,omitempty"`
}

// EventLog is a fixed-capacity ring buffer of Events. When full, the
// oldest events are overwritten; Total keeps counting. A nil log is a
// no-op.
type EventLog struct {
	mu    sync.Mutex
	buf   []Event
	next  int // ring write position
	total uint64
	taps  map[uint64]func(Event)
	tapID uint64
}

// NewEventLog returns a log retaining the last capacity events
// (minimum 1).
func NewEventLog(capacity int) *EventLog {
	if capacity < 1 {
		capacity = 1
	}
	return &EventLog{buf: make([]Event, 0, capacity)}
}

// Record appends an event and fans it out to every registered tap.
func (l *EventLog) Record(simTimeS float64, kind, name string, value, aux float64) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.total++
	e := Event{Seq: l.total, SimTimeS: simTimeS, Kind: kind, Name: name, Value: value, Aux: aux}
	if len(l.buf) < cap(l.buf) {
		l.buf = append(l.buf, e)
	} else {
		l.buf[l.next] = e
		l.next = (l.next + 1) % cap(l.buf)
	}
	var taps []func(Event)
	if len(l.taps) > 0 {
		taps = make([]func(Event), 0, len(l.taps))
		for _, fn := range l.taps {
			taps = append(taps, fn)
		}
	}
	l.mu.Unlock()
	// Taps run outside the lock so a tap may itself query the log (or
	// block briefly on a channel send) without deadlocking recorders.
	for _, fn := range taps {
		fn(e)
	}
}

// Tap registers fn to observe every event recorded after the call, in
// record order from the caller's perspective but concurrently with other
// recorders — fn must be safe for concurrent use. The returned cancel
// removes the tap; events already fanned out may still be delivered
// briefly after cancel returns. A nil log returns a no-op cancel.
func (l *EventLog) Tap(fn func(Event)) (cancel func()) {
	if l == nil || fn == nil {
		return func() {}
	}
	l.mu.Lock()
	if l.taps == nil {
		l.taps = make(map[uint64]func(Event))
	}
	l.tapID++
	id := l.tapID
	l.taps[id] = fn
	l.mu.Unlock()
	return func() {
		l.mu.Lock()
		delete(l.taps, id)
		l.mu.Unlock()
	}
}

// Len returns the number of retained events.
func (l *EventLog) Len() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.buf)
}

// Total returns the number of events ever recorded, including overwritten
// ones.
func (l *EventLog) Total() uint64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total
}

// Events returns the retained events in chronological order.
func (l *EventLog) Events() []Event {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Event, 0, len(l.buf))
	if len(l.buf) == cap(l.buf) {
		out = append(out, l.buf[l.next:]...)
		out = append(out, l.buf[:l.next]...)
	} else {
		out = append(out, l.buf...)
	}
	return out
}

// WriteJSONL writes the retained events as JSON lines, oldest first.
func (l *EventLog) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, e := range l.Events() {
		if err := enc.Encode(e); err != nil {
			return err
		}
	}
	return nil
}
