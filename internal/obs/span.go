package obs

import (
	"math"
	"sync/atomic"
	"time"
)

// SpanStats aggregates every completed span sharing one path: invocation
// count, wall time, and accumulated simulated seconds, from which the
// sim-time-per-wall-second throughput of the instrumented region falls
// out. Updates are lock-free.
type SpanStats struct {
	count   atomic.Int64
	totalNs atomic.Int64
	minNs   atomic.Int64
	maxNs   atomic.Int64
	simS    atomicFloat
}

func newSpanStats() *SpanStats {
	s := &SpanStats{}
	s.minNs.Store(math.MaxInt64)
	return s
}

// spanStats returns (creating on first use) the stats bucket for a path.
func (r *Registry) spanStats(path string) *SpanStats {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	s := r.spans[path]
	r.mu.RUnlock()
	if s != nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if s := r.spans[path]; s != nil {
		return s
	}
	s = newSpanStats()
	r.spans[path] = s
	return s
}

// Span is one live timed region. Spans nest by path: a child started from
// a parent named "a" with name "b" aggregates under "a/b". A nil span (from
// a nil registry) is a no-op.
type Span struct {
	reg   *Registry
	stats *SpanStats
	path  string
	start time.Time
	simS  float64
	ended bool
}

// StartSpan begins timing a region aggregated under name.
func (r *Registry) StartSpan(name string) *Span {
	if r == nil {
		return nil
	}
	return &Span{reg: r, stats: r.spanStats(name), path: name, start: time.Now()}
}

// Child starts a nested span whose path extends the parent's.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	return s.reg.StartSpan(s.path + "/" + name)
}

// AddSimTime credits simulated seconds covered by this span; recorded into
// the path's stats at End.
func (s *Span) AddSimTime(seconds float64) {
	if s == nil {
		return
	}
	s.simS += seconds
}

// Path returns the span's aggregation path ("" for nil).
func (s *Span) Path() string {
	if s == nil {
		return ""
	}
	return s.path
}

// End stops the span and folds it into its path's stats. Calling End more
// than once, or on a nil span, is a no-op.
func (s *Span) End() {
	if s == nil || s.ended {
		return
	}
	s.ended = true
	d := time.Since(s.start).Nanoseconds()
	if d < 0 {
		d = 0
	}
	st := s.stats
	st.count.Add(1)
	st.totalNs.Add(d)
	for {
		old := st.minNs.Load()
		if old <= d || st.minNs.CompareAndSwap(old, d) {
			break
		}
	}
	for {
		old := st.maxNs.Load()
		if old >= d || st.maxNs.CompareAndSwap(old, d) {
			break
		}
	}
	st.simS.Add(s.simS)
	if t := s.reg.spanTracer(); t != nil {
		t.record(s.path, s.start, d, s.simS)
	}
}

// SpanSnapshot summarizes one span path.
type SpanSnapshot struct {
	Count       int64   `json:"count"`
	WallSeconds float64 `json:"wall_seconds"`
	MinSeconds  float64 `json:"min_seconds"`
	MaxSeconds  float64 `json:"max_seconds"`
	SimSeconds  float64 `json:"sim_seconds"`
	// SimPerWall is simulated seconds advanced per wall-clock second: the
	// throughput of the instrumented region (0 when no sim time was
	// credited or the region was too fast to time).
	SimPerWall float64 `json:"sim_seconds_per_wall_second"`
}

func (st *SpanStats) snapshot() SpanSnapshot {
	out := SpanSnapshot{Count: st.count.Load()}
	if out.Count == 0 {
		return out
	}
	out.WallSeconds = float64(st.totalNs.Load()) / 1e9
	out.MinSeconds = float64(st.minNs.Load()) / 1e9
	out.MaxSeconds = float64(st.maxNs.Load()) / 1e9
	out.SimSeconds = st.simS.Load()
	if out.WallSeconds > 0 && out.SimSeconds > 0 {
		out.SimPerWall = out.SimSeconds / out.WallSeconds
	}
	return out
}
