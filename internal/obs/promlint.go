package obs

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"
)

// LintPrometheus validates a text-format exposition against a minimal
// Prometheus 0.0.4 grammar. It is deliberately small — a line regex plus
// HELP/TYPE bookkeeping — but strict enough to catch the drift that
// breaks real scrapers:
//
//   - every line is a # HELP, a # TYPE, a comment, blank, or a sample
//     matching name{labels} value [timestamp]
//   - metric and label names stay inside the Prometheus charsets
//   - HELP and TYPE appear at most once per family, TYPE before any of
//     the family's samples, with a valid type keyword
//   - sample values parse as Go floats (or +Inf/-Inf/NaN)
//   - no duplicate series (same name and label set)
//   - histogram families expose only _bucket/_sum/_count samples, and
//     every _bucket carries an le label
//
// The CI exposition test gates ttsimd's /metrics on this linter.
func LintPrometheus(exposition []byte) error {
	var (
		helpSeen = map[string]bool{}
		typeOf   = map[string]string{}
		sampled  = map[string]bool{} // families with samples already seen
		series   = map[string]bool{} // full series lines seen
	)
	for i, line := range strings.Split(string(exposition), "\n") {
		lineNo := i + 1
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			kind, name, rest, ok := parsePromComment(line)
			if !ok {
				continue // plain comment: legal, ignored
			}
			if !promMetricNameRE.MatchString(name) {
				return fmt.Errorf("prometheus line %d: bad metric name %q in %s", lineNo, name, kind)
			}
			switch kind {
			case "HELP":
				if helpSeen[name] {
					return fmt.Errorf("prometheus line %d: second HELP for %q", lineNo, name)
				}
				helpSeen[name] = true
			case "TYPE":
				if _, dup := typeOf[name]; dup {
					return fmt.Errorf("prometheus line %d: second TYPE for %q", lineNo, name)
				}
				if sampled[name] {
					return fmt.Errorf("prometheus line %d: TYPE for %q after its samples", lineNo, name)
				}
				switch rest {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return fmt.Errorf("prometheus line %d: unknown type %q for %q", lineNo, rest, name)
				}
				typeOf[name] = rest
			}
			continue
		}

		m := promSampleRE.FindStringSubmatch(line)
		if m == nil {
			return fmt.Errorf("prometheus line %d: malformed sample %q", lineNo, line)
		}
		name, labels, value := m[1], m[2], m[3]
		if _, err := strconv.ParseFloat(strings.TrimPrefix(value, "+"), 64); err != nil {
			return fmt.Errorf("prometheus line %d: bad value %q: %v", lineNo, value, err)
		}
		labelSet, err := parsePromLabels(labels)
		if err != nil {
			return fmt.Errorf("prometheus line %d: %v", lineNo, err)
		}
		seriesID := name + "\x00" + labels
		if series[seriesID] {
			return fmt.Errorf("prometheus line %d: duplicate series %s%s", lineNo, name, labels)
		}
		series[seriesID] = true

		// Resolve the family: histogram samples attach their suffixed
		// names to the family that declared TYPE histogram.
		family := name
		if typeOf[family] == "" {
			for _, suffix := range []string{"_bucket", "_sum", "_count"} {
				base := strings.TrimSuffix(name, suffix)
				if base != name && typeOf[base] == "histogram" {
					family = base
					break
				}
			}
		}
		if typeOf[family] == "" {
			return fmt.Errorf("prometheus line %d: sample %q has no preceding TYPE", lineNo, name)
		}
		if typeOf[family] == "histogram" {
			if family == name {
				return fmt.Errorf("prometheus line %d: histogram %q sampled without _bucket/_sum/_count suffix", lineNo, name)
			}
			if strings.HasSuffix(name, "_bucket") && labelSet["le"] == "" {
				return fmt.Errorf("prometheus line %d: histogram bucket %q lacks an le label", lineNo, name)
			}
		}
		sampled[family] = true
	}
	return nil
}

var (
	promMetricNameRE = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	promSampleRE     = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? ([^ ]+)( [0-9]+)?$`)
	promLabelRE      = regexp.MustCompile(`^([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"$`)
)

// parsePromComment splits a # HELP/# TYPE line into kind, metric name and
// the remainder. ok is false for plain comments.
func parsePromComment(line string) (kind, name, rest string, ok bool) {
	for _, k := range []string{"HELP", "TYPE"} {
		prefix := "# " + k + " "
		if strings.HasPrefix(line, prefix) {
			body := line[len(prefix):]
			name, rest, _ := strings.Cut(body, " ")
			return k, name, rest, true
		}
	}
	return "", "", "", false
}

// parsePromLabels validates a {k="v",...} block and returns the label
// values by key.
func parsePromLabels(block string) (map[string]string, error) {
	out := map[string]string{}
	if block == "" {
		return out, nil
	}
	inner := strings.TrimSuffix(strings.TrimPrefix(block, "{"), "}")
	if inner == "" {
		return out, nil
	}
	for _, pair := range splitPromPairs(inner) {
		m := promLabelRE.FindStringSubmatch(pair)
		if m == nil {
			return nil, fmt.Errorf("malformed label pair %q", pair)
		}
		if _, dup := out[m[1]]; dup {
			return nil, fmt.Errorf("duplicate label %q", m[1])
		}
		out[m[1]] = m[2]
	}
	return out, nil
}

// splitPromPairs splits k="v" pairs on commas outside quoted values.
func splitPromPairs(inner string) []string {
	var out []string
	var cur strings.Builder
	inQuotes, escaped := false, false
	for _, c := range inner {
		switch {
		case escaped:
			escaped = false
		case c == '\\' && inQuotes:
			escaped = true
		case c == '"':
			inQuotes = !inQuotes
		case c == ',' && !inQuotes:
			out = append(out, cur.String())
			cur.Reset()
			continue
		}
		cur.WriteRune(c)
	}
	out = append(out, cur.String())
	return out
}
