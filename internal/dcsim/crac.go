package dcsim

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/pcm"
	"repro/internal/timeseries"
	"repro/internal/units"
	"repro/internal/workload"
)

// CRAC-coupled constrained run. RunConstrained abstracts the
// oversubscribed cooling system as a power ceiling; this file models it
// physically: a CRAC plant of fixed capacity serving a room with thermal
// mass. When the cluster's heat exceeds the plant, the room (and so every
// server's inlet) warms; a thermostat downclocks the fleet when the inlet
// crosses its limit and relocates work if even the floor frequency cannot
// stop the excursion. The wax sits in the same loop: its wake temperature
// rides the inlet, so it absorbs harder as the room heats. Agreement
// between the two formulations is a test.

// CRACOptions configures the plant and room.
type CRACOptions struct {
	// CapacityW is the heat removal the plant sustains.
	CapacityW float64
	// RoomCapacityJPerK is the room's thermal mass (air + structure).
	RoomCapacityJPerK float64
	// SetpointC is the supply (inlet) temperature when the plant keeps up.
	SetpointC float64
	// InletLimitC is the thermostat: above it the fleet downclocks.
	InletLimitC float64
}

// Validate reports configuration errors.
func (o CRACOptions) Validate() error {
	switch {
	case o.CapacityW <= 0:
		return fmt.Errorf("dcsim: non-positive CRAC capacity %v", o.CapacityW)
	case o.RoomCapacityJPerK <= 0:
		return errors.New("dcsim: non-positive room capacity")
	case o.InletLimitC <= o.SetpointC:
		return fmt.Errorf("dcsim: inlet limit %v not above setpoint %v", o.InletLimitC, o.SetpointC)
	}
	return nil
}

// CRACRun is the outcome of the coupled run.
type CRACRun struct {
	// Ideal and Throughput are in servers-at-nominal units, as in
	// ConstrainedRun.
	Ideal, Throughput *timeseries.Series
	// InletC traces the room supply temperature.
	InletC *timeseries.Series
	// WaxLiquid traces the melt state (zero series without wax).
	WaxLiquid *timeseries.Series
	// OnsetS is the first throttle time (NaN if never).
	OnsetS float64
}

// RunConstrainedCRAC advances the coupled room+cluster system. withWax
// selects the PCM retrofit.
func (c *Cluster) RunConstrainedCRAC(tr *workload.Trace, opts CRACOptions, withWax bool) (*CRACRun, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if err := c.checkPopulation(); err != nil {
		return nil, err
	}
	if tr == nil || tr.Total.Len() == 0 {
		return nil, errors.New("dcsim: empty trace")
	}
	if c.ROM == nil {
		return nil, errors.New("dcsim: CRAC run requires a ROM")
	}
	n := tr.Total.Len()
	dt := tr.Total.Step
	out := &CRACRun{OnsetS: math.NaN()}
	var err error
	if out.Ideal, err = timeseries.New(tr.Total.Start, dt, n); err != nil {
		return nil, err
	}
	out.Throughput = out.Ideal.Clone()
	out.InletC = out.Ideal.Clone()
	out.WaxLiquid = out.Ideal.Clone()

	var wax *pcm.State
	if withWax {
		if wax, err = c.ROM.NewWaxState(); err != nil {
			return nil, err
		}
	}

	scale := float64(c.N)
	perfDown := c.Cfg.Perf.RelativeThroughput(c.Cfg.Perf.DownclockGHz)
	frDown := c.Cfg.Perf.DownclockGHz / c.Cfg.Perf.NominalGHz
	inlet := opts.SetpointC
	nominalInlet := c.Cfg.InletC

	for i := 0; i < n; i++ {
		u := tr.Total.Values[i]
		t := tr.Total.TimeAt(i)
		out.Ideal.Values[i] = u * scale

		// Thermostat: full speed while the inlet is in bounds; floor
		// frequency above the limit; shed work if the room still heats at
		// the floor.
		fr, perf := 1.0, 1.0
		uServed := u
		if inlet > opts.InletLimitC {
			fr, perf = frDown, perfDown
			if math.IsNaN(out.OnsetS) {
				out.OnsetS = t
			}
			// Shed until the fleet heat (ignoring wax, which may be spent)
			// fits the plant.
			for uServed > 0 && c.Cfg.PowerAt(uServed, fr)*scale > opts.CapacityW {
				uServed -= 0.01
			}
			if uServed < 0 {
				uServed = 0
			}
		}

		// The wax sees its wake temperature shifted by the room excursion
		// (the network is linear in the inlet).
		absorbW := 0.0
		if wax != nil {
			wake := c.ROM.WakeAirC(uServed, fr) + (inlet - nominalInlet)
			absorbW = wax.ExchangeWithAir(wake, c.ROM.HA, dt) / dt * scale
			out.WaxLiquid.Values[i] = wax.LiquidFraction()
		}
		heat := c.Cfg.PowerAt(uServed, fr)*scale - absorbW
		removed := math.Min(heat, opts.CapacityW)
		// Surplus plant capacity also pulls the room back toward the
		// setpoint.
		if heat < opts.CapacityW && inlet > opts.SetpointC {
			removed = math.Min(opts.CapacityW, heat+(inlet-opts.SetpointC)*opts.RoomCapacityJPerK/(2*units.Hour))
		}
		inlet += (heat - removed) * dt / opts.RoomCapacityJPerK
		if inlet < opts.SetpointC {
			inlet = opts.SetpointC
		}
		out.InletC.Values[i] = inlet
		out.Throughput.Values[i] = uServed * perf * scale
	}
	return out, nil
}
