package dcsim

import (
	"testing"

	"repro/internal/server"
	"repro/internal/workload"
)

// BenchmarkFluidCoolingLoad measures the fluid engine's per-step cost with
// the ROM derivation hoisted out of the timed region — the inner loop the
// fleet simulator multiplies by rack count.
func BenchmarkFluidCoolingLoad(b *testing.B) {
	c, err := NewCluster(server.OneU(), 0)
	if err != nil {
		b.Fatal(err)
	}
	tr := workload.GoogleTwoDay()
	for _, variant := range []struct {
		name    string
		withWax bool
	}{{"baseline", false}, {"wax", true}} {
		b.Run(variant.name, func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := c.RunCoolingLoad(tr, variant.withWax); err != nil {
					b.Fatal(err)
				}
			}
			steps := float64(tr.Total.Len()) * float64(b.N)
			b.ReportMetric(steps/b.Elapsed().Seconds(), "steps/s")
		})
	}
}
