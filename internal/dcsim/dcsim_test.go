package dcsim

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"repro/internal/numeric"
	"repro/internal/server"
	"repro/internal/units"
	"repro/internal/workload"
)

func testCluster(t *testing.T, cfg *server.Config) *Cluster {
	t.Helper()
	c, err := NewCluster(cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestCoolingRunBaselineTracksPower(t *testing.T) {
	c := testCluster(t, server.OneU())
	tr := workload.GoogleTwoDay()
	run, err := c.RunCoolingLoad(tr, false)
	if err != nil {
		t.Fatal(err)
	}
	// Without wax, cooling load equals power everywhere.
	for i := range run.PowerW.Values {
		if run.PowerW.Values[i] != run.CoolingLoadW.Values[i] {
			t.Fatal("baseline cooling load diverges from power")
		}
	}
	// Cluster peak power: 1008 servers near 95% utilization.
	peak, _ := run.PowerW.Peak()
	want := 1008 * c.Cfg.PowerAt(0.95, 1)
	if math.Abs(peak-want)/want > 0.01 {
		t.Errorf("cluster peak %v, want ~%v", peak, want)
	}
}

func TestCoolingRunWaxShavesPeak(t *testing.T) {
	for _, cfg := range []*server.Config{server.OneU(), server.TwoU(), server.OpenCompute()} {
		c := testCluster(t, cfg)
		tr := workload.GoogleTwoDay()
		base, err := c.RunCoolingLoad(tr, false)
		if err != nil {
			t.Fatal(err)
		}
		wax, err := c.RunCoolingLoad(tr, true)
		if err != nil {
			t.Fatal(err)
		}
		pb, _ := base.CoolingLoadW.Peak()
		pw, _ := wax.CoolingLoadW.Peak()
		red := 1 - pw/pb
		if red < 0.03 {
			t.Errorf("%s: peak cooling reduction %.1f%%, want a material shave", cfg.Name, red*100)
		}
		if red > 0.25 {
			t.Errorf("%s: peak cooling reduction %.1f%% implausibly large", cfg.Name, red*100)
		}
		if wax.AbsorbedJ <= 0 || wax.ReleasedJ <= 0 {
			t.Errorf("%s: wax flows absorbed=%v released=%v", cfg.Name, wax.AbsorbedJ, wax.ReleasedJ)
		}
		// Over a cyclic trace the wax returns what it stores, within the
		// residual stored heat at the trace end (the crust-limited release
		// of day 2's charge is still in flight at midnight).
		imbalance := math.Abs(wax.AbsorbedJ-wax.ReleasedJ) / wax.AbsorbedJ
		if imbalance > 0.55 {
			t.Errorf("%s: wax energy imbalance %.0f%%", cfg.Name, imbalance*100)
		}
		// The wax must melt substantially at peak and refreeze by the end
		// of each night (the paper requires full resolidification within
		// the 24 h cycle).
		melt, _ := wax.WaxLiquid.Peak()
		if melt < 0.5 {
			t.Errorf("%s: wax only reached %.0f%% molten", cfg.Name, melt*100)
		}
		endOfNight := wax.WaxLiquid.At(30 * units.Hour) // 6am day 2
		if endOfNight > 0.25 {
			t.Errorf("%s: wax still %.0f%% molten at 6am day 2", cfg.Name, endOfNight*100)
		}
	}
}

func TestCoolingRunEnergyConservation(t *testing.T) {
	// Integrated cooling load equals integrated power minus net wax
	// storage change; over the full run the net change is the absorbed
	// minus released energy.
	c := testCluster(t, server.TwoU())
	tr := workload.GoogleTwoDay()
	wax, err := c.RunCoolingLoad(tr, true)
	if err != nil {
		t.Fatal(err)
	}
	powerJ := wax.PowerW.Integral()
	coolJ := wax.CoolingLoadW.Integral()
	net := wax.AbsorbedJ - wax.ReleasedJ
	if math.Abs(powerJ-coolJ-net) > 1e-6*powerJ+1e3 {
		t.Errorf("energy books don't balance: power %v cool %v net wax %v", powerJ, coolJ, net)
	}
}

func TestRunCoolingLoadValidation(t *testing.T) {
	c := testCluster(t, server.OneU())
	if _, err := c.RunCoolingLoad(nil, false); err == nil {
		t.Error("accepted nil trace")
	}
	bad := &Cluster{Cfg: server.OneU(), N: 100}
	if _, err := bad.RunCoolingLoad(workload.GoogleTwoDay(), true); err == nil {
		t.Error("accepted wax run without ROM")
	}
}

func TestClusterPopulationValidation(t *testing.T) {
	// The constructor rejects configs whose cluster size was zeroed out
	// instead of building a cluster that fails (or silently scales by 0)
	// at run time.
	cfg := server.OneU()
	cfg.ClusterSize = 0
	if _, err := NewCluster(cfg, 0); err == nil {
		t.Error("NewCluster accepted zero cluster size")
	}
	cfg.ClusterSize = -7
	if _, err := NewClusterObserved(cfg, 0, nil); err == nil {
		t.Error("NewClusterObserved accepted negative cluster size")
	}
	// Hand-assembled clusters (the fields are exported for that) are
	// rejected by every run entry point, not just RunCoolingLoad.
	good := testCluster(t, server.OneU())
	tr := workload.GoogleTwoDay()
	for _, n := range []int{0, -5} {
		bad := &Cluster{Cfg: good.Cfg, ROM: good.ROM, N: n}
		if _, err := bad.RunCoolingLoad(tr, true); err == nil {
			t.Errorf("RunCoolingLoad accepted N=%d", n)
		}
		if _, err := bad.RunConstrained(tr, 1e6); err == nil {
			t.Errorf("RunConstrained accepted N=%d", n)
		}
		if _, err := bad.RunConstrainedCRAC(tr, cracFor(good.Cfg, good, 50), true); err == nil {
			t.Errorf("RunConstrainedCRAC accepted N=%d", n)
		}
	}
}

func TestConstrainedRunShapes(t *testing.T) {
	cfg := server.TwoU()
	c := testCluster(t, cfg)
	tr := workload.GoogleTwoDay()
	// Oversubscribe: limit the cluster 80 W per server below its peak
	// heat output — deep enough that the wax eventually fills and the
	// cluster must throttle (the Figure 12 regime).
	limit := float64(c.N) * (cfg.PowerAt(0.95, 1) - 80)
	run, err := c.RunConstrained(tr, limit)
	if err != nil {
		t.Fatal(err)
	}
	// Ideal >= WithWax >= NoWax everywhere.
	for i := range run.Ideal.Values {
		if run.WithWax.Values[i] > run.Ideal.Values[i]+1e-6 {
			t.Fatal("with-wax throughput exceeds ideal")
		}
		if run.NoWax.Values[i] > run.WithWax.Values[i]+1e-6 {
			t.Fatalf("no-wax throughput exceeds with-wax at sample %d", i)
		}
	}
	// The wax bought hours of delay before throttling.
	if math.IsNaN(run.OnsetNoWaxS) {
		t.Fatal("no-wax variant never throttled in an oversubscribed datacenter")
	}
	if math.IsNaN(run.OnsetWithWaxS) {
		t.Fatal("with-wax variant never throttled: limit too loose for the test")
	}
	if run.DelayHours < 1 {
		t.Errorf("thermal-limit delay %.2f h, want hours of deferral", run.DelayHours)
	}
	// Peak throughput gain: the 2U recovers the full downclock penalty.
	pNo, _ := run.NoWax.Peak()
	pWax, _ := run.WithWax.Peak()
	gain := pWax/pNo - 1
	if gain < 0.3 {
		t.Errorf("peak throughput gain %.0f%%, want a large recovery", gain*100)
	}
}

func TestConstrainedRunValidation(t *testing.T) {
	c := testCluster(t, server.OneU())
	tr := workload.GoogleTwoDay()
	if _, err := c.RunConstrained(tr, 0); err == nil {
		t.Error("accepted zero limit")
	}
	if _, err := c.RunConstrained(nil, 1e6); err == nil {
		t.Error("accepted nil trace")
	}
	noROM := &Cluster{Cfg: server.OneU(), N: 10}
	if _, err := noROM.RunConstrained(tr, 1e6); err == nil {
		t.Error("accepted run without ROM")
	}
}

func TestConstrainedGenerousLimitNeverThrottles(t *testing.T) {
	cfg := server.OneU()
	c := testCluster(t, cfg)
	tr := workload.GoogleTwoDay()
	limit := float64(c.N) * cfg.PowerAt(1, 1) * 1.2
	run, err := c.RunConstrained(tr, limit)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(run.OnsetNoWaxS) {
		t.Error("throttled despite generous cooling")
	}
	for i := range run.Ideal.Values {
		if math.Abs(run.NoWax.Values[i]-run.Ideal.Values[i]) > 1e-9 {
			t.Fatal("unconstrained throughput should equal ideal")
		}
	}
}

func TestEventEngineTracksTrace(t *testing.T) {
	tr := workload.GoogleTwoDay()
	opts := DefaultEventOptions()
	res, err := RunEvents(tr, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed == 0 {
		t.Fatal("no jobs completed")
	}
	// Sampled utilization must track the driving trace closely.
	resampled, err := res.Utilization.Resample(tr.Total.Step)
	if err != nil {
		t.Fatal(err)
	}
	n := tr.Total.Len()
	if resampled.Len() < n {
		n = resampled.Len()
	}
	rmse, err := numeric.RMSE(resampled.Values[:n], tr.Total.Values[:n])
	if err != nil {
		t.Fatal(err)
	}
	if rmse > 0.06 {
		t.Errorf("event-engine utilization RMSE vs trace = %v, want < 0.06", rmse)
	}
}

func TestEventEngineRoundRobinBalances(t *testing.T) {
	tr := workload.GoogleTwoDay()
	res, err := RunEvents(tr, DefaultEventOptions())
	if err != nil {
		t.Fatal(err)
	}
	lo, _ := numeric.Min(res.UtilPerServer)
	hi, _ := numeric.Max(res.UtilPerServer)
	if hi-lo > 0.03 {
		t.Errorf("round-robin spread %v..%v too wide", lo, hi)
	}
	m := numeric.Mean(res.UtilPerServer)
	if math.Abs(m-0.5) > 0.05 {
		t.Errorf("mean per-server utilization %v, want ~0.50", m)
	}
}

func TestEventEngineDeterministic(t *testing.T) {
	tr := workload.GoogleTwoDay()
	a, err := RunEvents(tr, DefaultEventOptions())
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunEvents(tr, DefaultEventOptions())
	if err != nil {
		t.Fatal(err)
	}
	if a.Completed != b.Completed || a.Dropped != b.Dropped {
		t.Error("same seed produced different outcomes")
	}
}

func TestEventEngineJobMix(t *testing.T) {
	tr := workload.GoogleTwoDay()
	res, err := RunEvents(tr, DefaultEventOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range workload.JobTypes {
		if res.CompletedByType[j] == 0 {
			t.Errorf("no %v jobs completed", j)
		}
	}
	// Drops should be rare at 50% average load with queueing.
	if frac := float64(res.Dropped) / float64(res.Completed+res.Dropped); frac > 0.01 {
		t.Errorf("drop fraction %v, want <1%%", frac)
	}
}

func TestEventEngineValidation(t *testing.T) {
	tr := workload.GoogleTwoDay()
	bad := DefaultEventOptions()
	bad.Servers = 0
	if _, err := RunEvents(tr, bad); err == nil {
		t.Error("accepted zero servers")
	}
	bad = DefaultEventOptions()
	bad.MeanServiceS = 0
	if _, err := RunEvents(tr, bad); err == nil {
		t.Error("accepted zero service time")
	}
	if _, err := RunEvents(nil, DefaultEventOptions()); err == nil {
		t.Error("accepted nil trace")
	}
}

func TestPoissonMoments(t *testing.T) {
	rng := newSeededRand(42)
	for _, mean := range []float64{0.5, 5, 40, 200} {
		n := 4000
		sum := 0.0
		for i := 0; i < n; i++ {
			sum += float64(poisson(rng, mean))
		}
		got := sum / float64(n)
		if math.Abs(got-mean) > 4*math.Sqrt(mean/float64(n))+0.6 {
			t.Errorf("poisson(%v) sample mean %v", mean, got)
		}
	}
	if poisson(rng, 0) != 0 || poisson(rng, -1) != 0 {
		t.Error("non-positive mean should give 0")
	}
}

// newSeededRand builds the same PRNG the engine uses.
func newSeededRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// Integration: over a full week (with a weekend dip) the wax completes a
// clean melt/freeze cycle every single day — the sustainability property
// the paper's 24-hour-resolidification requirement protects.
func TestWeekLongWaxCyclesDaily(t *testing.T) {
	opts := workload.DefaultOptions()
	opts.Days = 7
	opts.WeekendDamping = 0.25
	tr, err := workload.Generate(opts)
	if err != nil {
		t.Fatal(err)
	}
	c := testCluster(t, server.TwoU())
	run, err := c.RunCoolingLoad(tr, true)
	if err != nil {
		t.Fatal(err)
	}
	for day := 0; day < 7; day++ {
		// Melted substantially by each midday peak window...
		peakLiq := 0.0
		for h := 11.0; h <= 16; h += 0.5 {
			if v := run.WaxLiquid.At((float64(day)*24 + h) * units.Hour); v > peakLiq {
				peakLiq = v
			}
		}
		// ...except the damped weekend, where partial melting is expected.
		wantMelt := 0.5
		if day >= 5 {
			wantMelt = 0.05
		}
		if peakLiq < wantMelt {
			t.Errorf("day %d: wax only reached %.0f%% molten", day, peakLiq*100)
		}
		// And solid again by the following pre-dawn.
		morning := run.WaxLiquid.At((float64(day)*24 + 29) * units.Hour)
		if morning > 0.1 {
			t.Errorf("day %d: wax still %.0f%% molten next morning", day, morning*100)
		}
	}
}

func TestEventEngineRackAggregation(t *testing.T) {
	tr := workload.GoogleTwoDay()
	opts := DefaultEventOptions() // 40 servers, 20 per rack
	res, err := RunEvents(tr, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.UtilPerRack) != 2 {
		t.Fatalf("racks = %d, want 2", len(res.UtilPerRack))
	}
	// Rack utilizations are the means of their members.
	for r := 0; r < 2; r++ {
		sum := 0.0
		for i := r * 20; i < (r+1)*20; i++ {
			sum += res.UtilPerServer[i]
		}
		want := sum / 20
		if math.Abs(res.UtilPerRack[r]-want) > 1e-12 {
			t.Errorf("rack %d util %v, want %v", r, res.UtilPerRack[r], want)
		}
	}
	// Zero ServersPerRack: one big rack.
	opts.ServersPerRack = 0
	res, err = RunEvents(tr, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.UtilPerRack) != 1 {
		t.Errorf("default rack grouping = %d racks, want 1", len(res.UtilPerRack))
	}
}

func TestLeastLoadedBalancerDropsNoMore(t *testing.T) {
	// The ablation: least-loaded placement never drops more jobs than
	// round-robin on the same arrival sequence, and balances at least as
	// tightly.
	tr := workload.GoogleTwoDay()
	rrOpts := DefaultEventOptions()
	llOpts := DefaultEventOptions()
	llOpts.Balancer = LeastLoaded
	rr, err := RunEvents(tr, rrOpts)
	if err != nil {
		t.Fatal(err)
	}
	ll, err := RunEvents(tr, llOpts)
	if err != nil {
		t.Fatal(err)
	}
	if ll.Dropped > rr.Dropped {
		t.Errorf("least-loaded dropped %d vs round-robin %d", ll.Dropped, rr.Dropped)
	}
	spread := func(r *EventResult) float64 {
		lo, _ := numeric.Min(r.UtilPerServer)
		hi, _ := numeric.Max(r.UtilPerServer)
		return hi - lo
	}
	if spread(ll) > spread(rr)+0.01 {
		t.Errorf("least-loaded spread %v worse than round-robin %v", spread(ll), spread(rr))
	}
}

// The paper's Figure 9 progression: the production Open Compute blade fits
// only 0.5 l of wax (replacing the stock air inhibitors); the reconfigured
// blade (CPUs and SSDs swapped, HDDs replaced) fits 1.5 l. Three times the
// wax must buy a clearly larger peak shave.
func TestOpenComputeReconfigurationPaysOff(t *testing.T) {
	tr := workload.GoogleTwoDay()
	prod := testCluster(t, server.OpenComputeProduction())
	reconf := testCluster(t, server.OpenCompute())

	base, err := prod.RunCoolingLoad(tr, false)
	if err != nil {
		t.Fatal(err)
	}
	pb, _ := base.CoolingLoadW.Peak()
	reduction := func(c *Cluster) float64 {
		run, err := c.RunCoolingLoad(tr, true)
		if err != nil {
			t.Fatal(err)
		}
		p, _ := run.CoolingLoadW.Peak()
		return 1 - p/pb
	}
	rProd := reduction(prod)
	rReconf := reduction(reconf)
	if rProd <= 0 {
		t.Errorf("production blade wax shaved nothing (%.1f%%)", rProd*100)
	}
	if rReconf < rProd*1.5 {
		t.Errorf("reconfigured blade (%.1f%%) should clearly beat production (%.1f%%)",
			rReconf*100, rProd*100)
	}
}

// The event-level thermal run (one wax state per simulated server, driven
// by noisy discrete utilizations) must agree with the fluid engine's
// per-server cooling outcome — the justification for extrapolating the
// fluid model to cluster scale.
func TestEventThermalAgreesWithFluid(t *testing.T) {
	cfg := server.TwoU()
	cluster := testCluster(t, cfg)
	tr := workload.GoogleTwoDay()

	fluidBase, err := cluster.RunCoolingLoad(tr, false)
	if err != nil {
		t.Fatal(err)
	}
	fluidWax, err := cluster.RunCoolingLoad(tr, true)
	if err != nil {
		t.Fatal(err)
	}
	fb, _ := fluidBase.CoolingLoadW.Peak()
	fw, _ := fluidWax.CoolingLoadW.Peak()
	fluidRed := 1 - fw/fb

	opts := DefaultEventOptions()
	opts.Servers = 24
	evBase, err := RunEventsWithThermal(tr, opts, cluster.ROM, false)
	if err != nil {
		t.Fatal(err)
	}
	evWax, err := RunEventsWithThermal(tr, opts, cluster.ROM, true)
	if err != nil {
		t.Fatal(err)
	}
	eb, _ := evBase.CoolingLoadW.Peak()
	ew, _ := evWax.CoolingLoadW.Peak()
	eventRed := 1 - ew/eb

	// Same story within a few points despite Poisson noise on a small
	// group.
	if math.Abs(eventRed-fluidRed) > 0.05 {
		t.Errorf("event reduction %.1f%% vs fluid %.1f%%", eventRed*100, fluidRed*100)
	}
	// Wax melts and refreezes at the event level too.
	peakLiq, _ := evWax.WaxLiquid.Peak()
	if peakLiq < 0.5 {
		t.Errorf("event-level wax only %.0f%% molten at peak", peakLiq*100)
	}
	if evWax.WaxLiquid.At(30*units.Hour) > 0.25 {
		t.Error("event-level wax failed to refreeze overnight")
	}
	// Per-server power sums consistently: baseline cooling equals power.
	for i := range evBase.CoolingLoadW.Values {
		if evBase.CoolingLoadW.Values[i] != evBase.PowerW.Values[i] {
			t.Fatal("baseline event cooling diverged from power")
		}
	}
}

func TestRunEventsWithThermalValidation(t *testing.T) {
	tr := workload.GoogleTwoDay()
	if _, err := RunEventsWithThermal(tr, DefaultEventOptions(), nil, true); err == nil {
		t.Error("accepted nil ROM")
	}
}

// End-to-end: a trace written to CSV, re-read, and fed to the event engine
// behaves identically to the original (the measured-trace ingestion path).
func TestCSVTraceDrivesEventEngine(t *testing.T) {
	orig := workload.GoogleTwoDay()
	var buf bytes.Buffer
	if err := orig.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := workload.ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultEventOptions()
	opts.Servers = 10
	a, err := RunEvents(orig, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunEvents(back, opts)
	if err != nil {
		t.Fatal(err)
	}
	if a.Completed != b.Completed || a.Dropped != b.Dropped {
		t.Errorf("CSV round-trip changed the simulation: %d/%d vs %d/%d",
			a.Completed, a.Dropped, b.Completed, b.Dropped)
	}
}

// Tail latency: at the trace's 50% average load the median job sees almost
// no queueing, while the p99 carries a visible tail; saturating the group
// inflates the tail dramatically (the latency cost thermal management
// trades against).
func TestEventEngineTailLatency(t *testing.T) {
	tr := workload.GoogleTwoDay()
	res, err := RunEvents(tr, DefaultEventOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.SojournP50S < 1 || res.SojournP50S > 1.5 {
		t.Errorf("median slowdown = %v, want ~1 (little queueing at 50%% load)", res.SojournP50S)
	}
	if res.SojournP99S < res.SojournP95S || res.SojournP95S < res.SojournP50S {
		t.Error("latency percentiles not ordered")
	}

	// A near-saturation flat trace: the tail blows up.
	opts := workload.DefaultOptions()
	opts.Days = 1
	opts.MeanUtil = 0.93
	opts.PeakUtil = 0.99
	hot, err := workload.Generate(opts)
	if err != nil {
		t.Fatal(err)
	}
	hotRes, err := RunEvents(hot, DefaultEventOptions())
	if err != nil {
		t.Fatal(err)
	}
	if hotRes.SojournP99S < 2*res.SojournP99S {
		t.Errorf("saturated p99 slowdown %v not clearly above nominal %v",
			hotRes.SojournP99S, res.SojournP99S)
	}
}
