package dcsim

import (
	"container/heap"
	"errors"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/numeric"
	"repro/internal/obs"
	"repro/internal/timeseries"
	"repro/internal/workload"
)

// The event engine: the faithful reproduction of DCSim's discrete core.
// Jobs arrive from a time-varying Poisson process whose intensity tracks
// the utilization trace, a round-robin load balancer spreads them over the
// servers, each server runs up to its thread count concurrently and queues
// a bounded backlog, and completions free capacity.

// LoadBalancer selects the event engine's job placement policy.
type LoadBalancer int

const (
	// RoundRobin is the paper's policy.
	RoundRobin LoadBalancer = iota
	// LeastLoaded places each job on the server with the smallest
	// busy+backlog count (an ablation against the paper's choice).
	LeastLoaded
)

// EventOptions configures the event engine.
type EventOptions struct {
	// Servers is the simulated population (rack scale: the cluster result
	// is extrapolated).
	Servers int
	// ServersPerRack groups servers for the rack-level report (DCSim
	// models "the server, rack, and cluster levels").
	ServersPerRack int
	// Balancer is the placement policy (default RoundRobin).
	Balancer LoadBalancer
	// ThreadsPerServer is the concurrent job capacity of one server.
	ThreadsPerServer int
	// MeanServiceS is the mean job service time in seconds; per-class
	// means are scaled around it (search jobs are short, MapReduce long).
	MeanServiceS float64
	// QueueDepthPerThread bounds each server's backlog; beyond it jobs are
	// dropped (and counted).
	QueueDepthPerThread int
	// Seed drives all randomness.
	Seed int64
	// SampleEveryS is the utilization sampling interval.
	SampleEveryS float64
	// Obs is the optional telemetry registry: the run is timed as a span
	// (with arrival-generation and drain batches as children) and job
	// counts are recorded. Nil disables instrumentation.
	Obs *obs.Registry
}

// DefaultEventOptions returns a rack-scale configuration: 40 servers of 12
// threads, 30 s mean service time.
func DefaultEventOptions() EventOptions {
	return EventOptions{
		Servers:             40,
		ServersPerRack:      20,
		ThreadsPerServer:    12,
		MeanServiceS:        30,
		QueueDepthPerThread: 4,
		Seed:                7,
		SampleEveryS:        300,
	}
}

// serviceScale is each class's service time relative to the mean: searches
// are interactive, MapReduce tasks are long batch slices.
func serviceScale(j workload.JobType) float64 {
	switch j {
	case workload.Search:
		return 0.5
	case workload.Orkut:
		return 1.0
	case workload.MapReduce:
		return 2.5
	default:
		return 1.0
	}
}

// event is a queue entry: either a job arrival or a completion on a
// server.
type event struct {
	at        float64
	kind      int // 0 arrival, 1 completion
	jobType   workload.JobType
	serviceS  float64
	serverIdx int
	// arrivedAt carries the original arrival time through queueing so
	// completions can report sojourn times.
	arrivedAt float64
}

type eventQueue []event

func (q eventQueue) Len() int            { return len(q) }
func (q eventQueue) Less(i, j int) bool  { return q[i].at < q[j].at }
func (q eventQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x interface{}) { *q = append(*q, x.(event)) }
func (q *eventQueue) Pop() interface{} {
	old := *q
	n := len(old)
	e := old[n-1]
	*q = old[:n-1]
	return e
}

// serverSim is one machine's queueing state.
type serverSim struct {
	busy       int
	backlog    []event
	busyTimeS  float64 // integrated thread-seconds
	lastChange float64
}

func (s *serverSim) accumulate(now float64) {
	s.busyTimeS += float64(s.busy) * (now - s.lastChange)
	s.lastChange = now
}

// EventResult summarizes an event-engine run.
type EventResult struct {
	// Utilization is the cluster thread utilization sampled over time.
	Utilization *timeseries.Series
	// UtilPerServer is each server's time-averaged utilization.
	UtilPerServer []float64
	// UtilPerRack aggregates servers into racks of ServersPerRack.
	UtilPerRack []float64
	// Completed, Dropped count jobs.
	Completed, Dropped int
	// CompletedByType breaks completions down per class.
	CompletedByType map[workload.JobType]int
	// SojournP50S, SojournP95S and SojournP99S are latency percentiles of
	// completed jobs (queueing plus service), normalized by each job's
	// own service time — 1.0 means no queueing at all. Tail latency is
	// the datacenter metric power/thermal management trades against
	// (Kanev et al., the paper's reference [13]).
	SojournP50S, SojournP95S, SojournP99S float64
}

// RunEvents executes the discrete-event simulation of the trace over a
// group of servers with round-robin load balancing.
func RunEvents(tr *workload.Trace, opts EventOptions) (*EventResult, error) {
	if tr == nil || tr.Total.Len() == 0 {
		return nil, errors.New("dcsim: empty trace")
	}
	if opts.Servers <= 0 || opts.ThreadsPerServer <= 0 {
		return nil, fmt.Errorf("dcsim: need positive servers and threads, got %d x %d", opts.Servers, opts.ThreadsPerServer)
	}
	if opts.MeanServiceS <= 0 {
		return nil, fmt.Errorf("dcsim: non-positive mean service time %v", opts.MeanServiceS)
	}
	if opts.QueueDepthPerThread < 0 {
		return nil, fmt.Errorf("dcsim: negative queue depth")
	}
	if opts.SampleEveryS <= 0 {
		opts.SampleEveryS = 300
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	servers := make([]serverSim, opts.Servers)
	totalThreads := float64(opts.Servers * opts.ThreadsPerServer)
	maxBacklog := opts.QueueDepthPerThread * opts.ThreadsPerServer

	sp := opts.Obs.StartSpan("dcsim.events")
	sp.AddSimTime(tr.Total.End() - tr.Total.Start)
	defer sp.End()

	// Pre-generate arrivals: within each trace step the Poisson intensity
	// is constant at lambda = u * totalThreads / meanService, so the count
	// is Poisson(lambda*dt) with uniform placement. Class membership
	// follows the per-class share at that step.
	gen := sp.Child("generate")
	var q eventQueue
	for i := 0; i < tr.Total.Len(); i++ {
		u := tr.Total.Values[i]
		dt := tr.Total.Step
		t0 := tr.Total.TimeAt(i)
		lambda := u * totalThreads / opts.MeanServiceS
		count := poisson(rng, lambda*dt)
		for k := 0; k < count; k++ {
			at := t0 + rng.Float64()*dt
			jt := pickClass(rng, tr, i)
			svc := rng.ExpFloat64() * opts.MeanServiceS * serviceScale(jt) / meanScale(tr, i)
			heap.Push(&q, event{at: at, kind: 0, jobType: jt, serviceS: svc, arrivedAt: at})
		}
	}
	opts.Obs.Counter("dcsim.jobs_generated").Add(int64(q.Len()))
	gen.End()

	res := &EventResult{CompletedByType: make(map[workload.JobType]int)}
	horizon := tr.Total.End()
	nSamples := int(horizon/opts.SampleEveryS) + 1
	util, err := timeseries.New(tr.Total.Start, opts.SampleEveryS, nSamples)
	if err != nil {
		return nil, err
	}

	rr := 0
	pick := func() int {
		switch opts.Balancer {
		case LeastLoaded:
			// Rotate the scan start so ties don't pile work onto low
			// indices (the classic naive-least-loaded bias).
			startAt := rr
			rr = (rr + 1) % opts.Servers
			best, load := startAt, int(^uint(0)>>1)
			for k := 0; k < opts.Servers; k++ {
				i := (startAt + k) % opts.Servers
				if l := servers[i].busy + len(servers[i].backlog); l < load {
					best, load = i, l
				}
			}
			return best
		default:
			idx := rr
			rr = (rr + 1) % opts.Servers
			return idx
		}
	}
	nextSample := tr.Total.Start
	sampleIdx := 0
	busyTotal := 0
	record := func(now float64) {
		for sampleIdx < nSamples && nextSample <= now {
			util.Values[sampleIdx] = float64(busyTotal) / totalThreads
			sampleIdx++
			nextSample += opts.SampleEveryS
		}
	}

	var slowdowns []float64
	start := func(idx int, e event, now float64) {
		servers[idx].accumulate(now)
		servers[idx].busy++
		busyTotal++
		heap.Push(&q, event{
			at: now + e.serviceS, kind: 1, serverIdx: idx,
			jobType: e.jobType, serviceS: e.serviceS, arrivedAt: e.arrivedAt,
		})
	}

	drain := sp.Child("drain")
	for q.Len() > 0 {
		e := heap.Pop(&q).(event)
		if e.at > horizon {
			break
		}
		record(e.at)
		switch e.kind {
		case 0: // arrival: load-balancer assignment
			idx := pick()
			s := &servers[idx]
			if s.busy < opts.ThreadsPerServer {
				start(idx, e, e.at)
			} else if len(s.backlog) < maxBacklog {
				s.backlog = append(s.backlog, e)
			} else {
				res.Dropped++
			}
		case 1: // completion
			s := &servers[e.serverIdx]
			s.accumulate(e.at)
			s.busy--
			busyTotal--
			res.Completed++
			res.CompletedByType[e.jobType]++
			if e.serviceS > 0 {
				slowdowns = append(slowdowns, (e.at-e.arrivedAt)/e.serviceS)
			}
			if len(s.backlog) > 0 {
				next := s.backlog[0]
				s.backlog = s.backlog[1:]
				start(e.serverIdx, next, e.at)
			}
		}
	}
	record(horizon + opts.SampleEveryS)
	drain.End()
	opts.Obs.Counter("dcsim.jobs_completed").Add(int64(res.Completed))
	opts.Obs.Counter("dcsim.jobs_dropped").Add(int64(res.Dropped))

	if len(slowdowns) > 0 {
		// Percentile copies and sorts internally; errors are impossible
		// for a non-empty sample with in-range p.
		res.SojournP50S, _ = numeric.Percentile(slowdowns, 50)
		res.SojournP95S, _ = numeric.Percentile(slowdowns, 95)
		res.SojournP99S, _ = numeric.Percentile(slowdowns, 99)
	}
	res.Utilization = util
	res.UtilPerServer = make([]float64, opts.Servers)
	for i := range servers {
		servers[i].accumulate(horizon)
		res.UtilPerServer[i] = servers[i].busyTimeS / (float64(opts.ThreadsPerServer) * (horizon - tr.Total.Start))
	}
	perRack := opts.ServersPerRack
	if perRack <= 0 {
		perRack = opts.Servers
	}
	for lo := 0; lo < opts.Servers; lo += perRack {
		hi := lo + perRack
		if hi > opts.Servers {
			hi = opts.Servers
		}
		sum := 0.0
		for i := lo; i < hi; i++ {
			sum += res.UtilPerServer[i]
		}
		res.UtilPerRack = append(res.UtilPerRack, sum/float64(hi-lo))
	}
	return res, nil
}

// meanScale normalizes the per-class service scaling so the aggregate mean
// service time stays at MeanServiceS given the class mix at step i.
func meanScale(tr *workload.Trace, i int) float64 {
	total := tr.Total.Values[i]
	if total <= 0 {
		return 1
	}
	s := 0.0
	for _, j := range workload.JobTypes {
		s += tr.PerType[j].Values[i] / total * serviceScale(j)
	}
	if s <= 0 {
		return 1
	}
	return s
}

// pickClass samples a job class proportional to the per-class load share
// at trace step i.
func pickClass(rng *rand.Rand, tr *workload.Trace, i int) workload.JobType {
	total := tr.Total.Values[i]
	if total <= 0 {
		return workload.Search
	}
	x := rng.Float64() * total
	acc := 0.0
	for _, j := range workload.JobTypes {
		acc += tr.PerType[j].Values[i]
		if x <= acc {
			return j
		}
	}
	return workload.MapReduce
}

// poisson draws a Poisson variate; for large means it uses the normal
// approximation to stay O(1).
func poisson(rng *rand.Rand, mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 64 {
		v := mean + math.Sqrt(mean)*rng.NormFloat64()
		if v < 0 {
			return 0
		}
		return int(v + 0.5)
	}
	l := math.Exp(-mean)
	k, p := 0, 1.0
	for p > l {
		k++
		p *= rng.Float64()
	}
	return k - 1
}
