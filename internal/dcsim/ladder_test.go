package dcsim

import (
	"testing"

	"repro/internal/server"
	"repro/internal/workload"
)

// The DVFS-ladder ablation: intermediate frequency steps let the
// controller throttle just enough, so cluster throughput under a limit is
// at least the binary policy's and usually better.
func TestDVFSLadderDominatesBinary(t *testing.T) {
	cfg := server.TwoU()
	c := testCluster(t, cfg)
	tr := workload.GoogleTwoDay()
	limit := float64(c.N) * (cfg.PowerAt(0.95, 1) - 80)

	binary, err := c.RunConstrained(tr, limit)
	if err != nil {
		t.Fatal(err)
	}
	ladder, err := c.RunConstrainedOpts(tr, ConstrainedOptions{
		LimitW:        limit,
		DVFSLadderGHz: []float64{1.8, 2.0, 2.2, 2.4, 2.6},
	})
	if err != nil {
		t.Fatal(err)
	}
	var binJ, ladJ float64
	for i := range binary.NoWax.Values {
		binJ += binary.NoWax.Values[i]
		ladJ += ladder.NoWax.Values[i]
		if ladder.NoWax.Values[i] < binary.NoWax.Values[i]-1e-6 {
			t.Fatalf("ladder below binary at sample %d", i)
		}
	}
	if ladJ <= binJ {
		t.Errorf("ladder total throughput %v should exceed binary %v", ladJ, binJ)
	}
}

func TestDVFSLadderIgnoresOutOfRangeSteps(t *testing.T) {
	cfg := server.OneU()
	c := testCluster(t, cfg)
	tr := workload.GoogleTwoDay()
	limit := float64(c.N) * cfg.PowerAt(1, 1) * 2 // never binds
	run, err := c.RunConstrainedOpts(tr, ConstrainedOptions{
		LimitW:        limit,
		DVFSLadderGHz: []float64{0.5, 9.9}, // both outside (floor, nominal)
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range run.Ideal.Values {
		if run.NoWax.Values[i] != run.Ideal.Values[i] {
			t.Fatal("unconstrained ladder run should match ideal")
		}
	}
}
