package dcsim

import (
	"math"
	"testing"

	"repro/internal/server"
	"repro/internal/units"
	"repro/internal/workload"
)

func cracFor(cfg *server.Config, c *Cluster, deficitW float64) CRACOptions {
	return CRACOptions{
		CapacityW:         float64(c.N) * (cfg.PowerAt(0.95, 1) - deficitW),
		RoomCapacityJPerK: 40e3 * float64(c.N), // ~room mass per server
		SetpointC:         25,
		InletLimitC:       32,
	}
}

// The physically-coupled CRAC run tells the same story as the power-limit
// abstraction: with wax the cluster rides the peak at full speed for hours
// longer, and the peak throughput gain lands near the downclock penalty.
func TestCRACRunAgreesWithLimitAbstraction(t *testing.T) {
	cfg := server.TwoU()
	c := testCluster(t, cfg)
	tr := workload.GoogleTwoDay()
	opts := cracFor(cfg, c, 55)

	noWax, err := c.RunConstrainedCRAC(tr, opts, false)
	if err != nil {
		t.Fatal(err)
	}
	withWax, err := c.RunConstrainedCRAC(tr, opts, true)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(noWax.OnsetS) {
		t.Fatal("no-wax CRAC run never throttled")
	}
	// The wax defers the thermostat trip by hours.
	if !math.IsNaN(withWax.OnsetS) {
		if delay := (withWax.OnsetS - noWax.OnsetS) / units.Hour; delay < 1 {
			t.Errorf("wax deferred the trip only %.1f h", delay)
		}
	}
	// Peak throughput gain near the downclock penalty (the abstraction's
	// +69%).
	ceiling := 0.95 * float64(c.N) * cfg.Perf.RelativeThroughput(cfg.Perf.DownclockGHz)
	pWax, _ := withWax.Throughput.Peak()
	gain := pWax/ceiling - 1
	if gain < 0.5 || gain > 0.8 {
		t.Errorf("CRAC-coupled peak gain = %.0f%%, want near +69%%", gain*100)
	}
	// Throughput with wax dominates throughout.
	for i := range noWax.Throughput.Values {
		if withWax.Throughput.Values[i] < noWax.Throughput.Values[i]-1e-6 {
			t.Fatalf("wax run below no-wax at sample %d", i)
		}
	}
}

// The room physics behave: the inlet never leaves [setpoint, limit+excursion
// band], warms during the throttled peak, and recovers overnight.
func TestCRACInletDynamics(t *testing.T) {
	cfg := server.TwoU()
	c := testCluster(t, cfg)
	tr := workload.GoogleTwoDay()
	opts := cracFor(cfg, c, 55)
	run, err := c.RunConstrainedCRAC(tr, opts, false)
	if err != nil {
		t.Fatal(err)
	}
	peakInlet, _ := run.InletC.Peak()
	if peakInlet <= opts.SetpointC+1 {
		t.Error("inlet never rose: the scenario is not constrained")
	}
	if peakInlet > opts.InletLimitC+8 {
		t.Errorf("inlet ran away to %.1f degC despite the thermostat", peakInlet)
	}
	// Overnight it returns to the setpoint.
	if got := run.InletC.At(30 * units.Hour); got > opts.SetpointC+0.5 {
		t.Errorf("inlet still %.1f degC at 6am", got)
	}
}

func TestCRACValidation(t *testing.T) {
	cfg := server.TwoU()
	c := testCluster(t, cfg)
	tr := workload.GoogleTwoDay()
	bad := cracFor(cfg, c, 55)
	bad.CapacityW = 0
	if _, err := c.RunConstrainedCRAC(tr, bad, true); err == nil {
		t.Error("accepted zero capacity")
	}
	bad = cracFor(cfg, c, 55)
	bad.InletLimitC = bad.SetpointC
	if _, err := c.RunConstrainedCRAC(tr, bad, true); err == nil {
		t.Error("accepted limit at setpoint")
	}
	bad = cracFor(cfg, c, 55)
	bad.RoomCapacityJPerK = 0
	if _, err := c.RunConstrainedCRAC(tr, bad, true); err == nil {
		t.Error("accepted zero room mass")
	}
	if _, err := c.RunConstrainedCRAC(nil, cracFor(cfg, c, 55), true); err == nil {
		t.Error("accepted nil trace")
	}
}
