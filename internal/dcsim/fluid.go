// Package dcsim is the datacenter simulator of the study: a reproduction
// of DCSim (Kontorinis et al.), the event-based traffic simulator that
// "models job arrival, load balancing, and work completion ... at the
// server, rack, and cluster levels, then extrapolates the cluster model
// out for the whole datacenter", extended with the PCM thermal time
// shifting state machine.
//
// Two engines are provided. The event engine (events.go) simulates
// individual jobs over a rack-scale group of servers with round-robin load
// balancing; under round-robin the per-server utilizations are
// statistically identical, so the cluster-scale experiments run on the
// fluid engine (this file): one representative server's power and wax
// state advanced along the utilization trace and multiplied out — exactly
// the extrapolation step DCSim performs. Tests verify the two engines
// agree.
package dcsim

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/obs"
	"repro/internal/pcm"
	"repro/internal/server"
	"repro/internal/timeseries"
	"repro/internal/units"
	"repro/internal/workload"
)

// Cluster binds a server configuration (and optionally its wax ROM) to a
// population size.
type Cluster struct {
	Cfg *server.Config
	// ROM carries the wax melting characteristics; required for wax runs.
	ROM *server.ROM
	// N is the cluster population (the paper uses 1008).
	N int
	// Obs is the optional telemetry registry; nil disables instrumentation
	// at zero cost.
	Obs *obs.Registry
}

// NewCluster builds a cluster, deriving the ROM at the given melting
// temperature (0 = config default).
func NewCluster(cfg *server.Config, meltC float64) (*Cluster, error) {
	return NewClusterObserved(cfg, meltC, nil)
}

// NewClusterObserved is NewCluster with a telemetry registry threaded
// through the ROM derivation (thermal solves) and every subsequent run.
func NewClusterObserved(cfg *server.Config, meltC float64, reg *obs.Registry) (*Cluster, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rom, err := server.DeriveROMObserved(cfg, meltC, reg)
	if err != nil {
		return nil, err
	}
	return &Cluster{Cfg: cfg, ROM: rom, N: cfg.ClusterSize, Obs: reg}, nil
}

// checkPopulation rejects a hand-built Cluster whose population was left
// unset (the constructors copy it from the config, but the fields are
// exported precisely so callers can assemble clusters directly).
func (c *Cluster) checkPopulation() error {
	if c.N <= 0 {
		return fmt.Errorf("dcsim: non-positive cluster population %d", c.N)
	}
	return nil
}

// CoolingRun is the outcome of a fully-subscribed cooling-load simulation
// (the Figure 11 experiment).
type CoolingRun struct {
	// PowerW is the cluster electrical draw (= raw heat generation), W.
	PowerW *timeseries.Series
	// CoolingLoadW is the heat the cooling system must remove: power minus
	// wax absorption plus wax release.
	CoolingLoadW *timeseries.Series
	// WaxLiquid is the average liquid fraction across the cluster.
	WaxLiquid *timeseries.Series
	// AbsorbedJ and ReleasedJ total the wax energy flows over the run.
	AbsorbedJ, ReleasedJ float64
}

// RunCoolingLoad advances the cluster along the trace with the cooling
// system fully subscribed (no thermal limit). withWax selects whether the
// servers carry their PCM retrofit.
func (c *Cluster) RunCoolingLoad(tr *workload.Trace, withWax bool) (*CoolingRun, error) {
	if err := c.checkPopulation(); err != nil {
		return nil, err
	}
	if tr == nil || tr.Total.Len() == 0 {
		return nil, errors.New("dcsim: empty trace")
	}
	if withWax && c.ROM == nil {
		return nil, errors.New("dcsim: wax run requires a ROM")
	}
	n := tr.Total.Len()
	dt := tr.Total.Step
	sp := c.Obs.StartSpan("dcsim.cooling_load")
	sp.AddSimTime(tr.Total.End() - tr.Total.Start)
	defer sp.End()
	c.Obs.Counter("dcsim.fluid_steps").Add(int64(n))
	run := &CoolingRun{}
	var err error
	if run.PowerW, err = timeseries.New(tr.Total.Start, dt, n); err != nil {
		return nil, err
	}
	run.CoolingLoadW = run.PowerW.Clone()
	run.WaxLiquid = run.PowerW.Clone()

	var wax *pcm.State
	if withWax {
		if wax, err = c.ROM.NewWaxState(); err != nil {
			return nil, err
		}
		wax.Instrument(c.Obs, c.Cfg.Name)
	}
	observed := c.Obs != nil
	scale := float64(c.N)
	for i := 0; i < n; i++ {
		u := tr.Total.Values[i]
		if observed && wax != nil {
			wax.SetSimTime(tr.Total.TimeAt(i))
		}
		power := c.Cfg.PowerAt(u, 1)
		coolingPerServer := power
		if wax != nil {
			wake := c.ROM.WakeAirC(u, 1)
			q := wax.ExchangeWithAir(wake, c.ROM.HA, dt) // J absorbed from air
			coolingPerServer = power - q/dt
			if q > 0 {
				run.AbsorbedJ += q * scale
			} else {
				run.ReleasedJ -= q * scale
			}
			run.WaxLiquid.Values[i] = wax.LiquidFraction()
		}
		run.PowerW.Values[i] = power * scale
		run.CoolingLoadW.Values[i] = coolingPerServer * scale
	}
	return run, nil
}

// ConstrainedRun is the outcome of the thermally constrained (Figure 12)
// experiment. Throughput series are in absolute units of
// servers x relative-throughput (1.0 = one server at nominal frequency and
// full utilization); the harness normalizes them for presentation.
type ConstrainedRun struct {
	Ideal, NoWax, WithWax *timeseries.Series
	// OnsetNoWaxS and OnsetWithWaxS are the first times each variant had
	// to throttle (NaN if never).
	OnsetNoWaxS, OnsetWithWaxS float64
	// DelayHours is how much longer the wax variant held full speed.
	DelayHours float64
	// WaxLiquid tracks the melt state of the wax variant.
	WaxLiquid *timeseries.Series
}

// variantState drives one policy (with or without wax) along the trace.
type variantState struct {
	cfg   *server.Config
	rom   *server.ROM
	wax   *pcm.State
	onset float64 // NaN until first throttle
	// throttled and relocated count the trace steps spent below nominal
	// frequency and shedding work, for telemetry.
	throttled, relocated int
}

// ConstrainedOptions tunes the thermally constrained run.
type ConstrainedOptions struct {
	// LimitW is the cluster cooling limit.
	LimitW float64
	// DVFSLadderGHz lists intermediate frequencies between the floor and
	// nominal (exclusive). Empty reproduces the paper's binary
	// nominal-or-1.6GHz policy; a ladder lets the controller throttle
	// just enough (the DESIGN.md ablation).
	DVFSLadderGHz []float64
}

// RunConstrained advances the cluster against a cooling limit (W for the
// whole cluster). The controller mirrors the paper's oversubscribed
// datacenter: run at nominal clocks while the room heat stays under the
// limit (the wax absorbing the overflow while it can); once the wax is
// spent, downclock to the DVFS floor, and if even that exceeds the limit,
// relocate work away (cap utilization) until the limit holds.
func (c *Cluster) RunConstrained(tr *workload.Trace, limitW float64) (*ConstrainedRun, error) {
	return c.RunConstrainedOpts(tr, ConstrainedOptions{LimitW: limitW})
}

// RunConstrainedOpts is RunConstrained with an optional DVFS ladder.
func (c *Cluster) RunConstrainedOpts(tr *workload.Trace, opts ConstrainedOptions) (*ConstrainedRun, error) {
	limitW := opts.LimitW
	if limitW <= 0 {
		return nil, fmt.Errorf("dcsim: non-positive thermal limit %v", limitW)
	}
	if err := c.checkPopulation(); err != nil {
		return nil, err
	}
	if tr == nil || tr.Total.Len() == 0 {
		return nil, errors.New("dcsim: empty trace")
	}
	if c.ROM == nil {
		return nil, errors.New("dcsim: constrained run requires a ROM")
	}
	n := tr.Total.Len()
	dt := tr.Total.Step
	sp := c.Obs.StartSpan("dcsim.constrained")
	sp.AddSimTime(tr.Total.End() - tr.Total.Start)
	defer sp.End()
	out := &ConstrainedRun{
		OnsetNoWaxS:   math.NaN(),
		OnsetWithWaxS: math.NaN(),
	}
	var err error
	if out.Ideal, err = timeseries.New(tr.Total.Start, dt, n); err != nil {
		return nil, err
	}
	out.NoWax = out.Ideal.Clone()
	out.WithWax = out.Ideal.Clone()
	out.WaxLiquid = out.Ideal.Clone()

	waxState, err := c.ROM.NewWaxState()
	if err != nil {
		return nil, err
	}
	waxState.Instrument(c.Obs, c.Cfg.Name)
	noWax := &variantState{cfg: c.Cfg, rom: c.ROM, onset: math.NaN()}
	withWax := &variantState{cfg: c.Cfg, rom: c.ROM, wax: waxState, onset: math.NaN()}

	scale := float64(c.N)
	perfDown := c.Cfg.Perf.RelativeThroughput(c.Cfg.Perf.DownclockGHz)
	frDown := c.Cfg.Perf.DownclockGHz / c.Cfg.Perf.NominalGHz
	limitPerServer := limitW / scale

	// DVFS steps tried in descending order; the paper's policy is the
	// two-point ladder {nominal, floor}.
	ladder := []float64{c.Cfg.Perf.NominalGHz}
	for _, f := range opts.DVFSLadderGHz {
		if f > c.Cfg.Perf.DownclockGHz && f < c.Cfg.Perf.NominalGHz {
			ladder = append(ladder, f)
		}
	}
	ladder = append(ladder, c.Cfg.Perf.DownclockGHz)
	sort.Sort(sort.Reverse(sort.Float64Slice(ladder)))

	step := func(v *variantState, u, t float64) float64 {
		// Estimated wax absorption rate (W) at a candidate operating
		// point; the actual exchange is committed once the point is
		// chosen. Release (a negative rate) is clamped to zero here: the
		// slow bleed-back from molten wax during throttled operation is a
		// second-order effect on the limit check.
		estimate := func(uu, fr float64) float64 {
			if v.wax == nil {
				return 0
			}
			wake := v.rom.WakeAirC(uu, fr)
			rate := v.rom.HA * (wake - v.wax.Temperature())
			if rate <= 0 {
				return 0
			}
			return rate
		}
		commit := func(uu, fr float64) {
			if v.wax == nil {
				return
			}
			v.wax.ExchangeWithAir(v.rom.WakeAirC(uu, fr), v.rom.HA, dt)
		}
		throttled := func() {
			if math.IsNaN(v.onset) {
				v.onset = t
			}
		}

		// Walk the DVFS ladder from nominal downward; the first step that
		// fits wins.
		for step, fGHz := range ladder {
			fr := v.cfg.Perf.FrequencyRatio(fGHz)
			if v.cfg.PowerAt(u, fr)-estimate(u, fr) <= limitPerServer {
				if step > 0 {
					throttled()
					v.throttled++
				}
				commit(u, fr)
				return u * v.cfg.Perf.RelativeThroughput(fGHz)
			}
		}
		// Relocate work: bisect the utilization that fits under the limit
		// at the floor frequency.
		throttled()
		v.throttled++
		v.relocated++
		lo, hi := 0.0, u
		for i := 0; i < 40; i++ {
			mid := (lo + hi) / 2
			if v.cfg.PowerAt(mid, frDown)-estimate(mid, frDown) <= limitPerServer {
				lo = mid
			} else {
				hi = mid
			}
		}
		commit(lo, frDown)
		return lo * perfDown
	}

	observed := c.Obs != nil
	for i := 0; i < n; i++ {
		u := tr.Total.Values[i]
		t := tr.Total.TimeAt(i)
		if observed {
			waxState.SetSimTime(t)
		}
		out.Ideal.Values[i] = u * scale
		out.NoWax.Values[i] = step(noWax, u, t) * scale
		out.WithWax.Values[i] = step(withWax, u, t) * scale
		out.WaxLiquid.Values[i] = waxState.LiquidFraction()
	}
	if observed {
		c.Obs.Counter("dcsim.constrained_steps").Add(int64(n))
		c.Obs.Counter("dcsim.throttled_steps_nowax").Add(int64(noWax.throttled))
		c.Obs.Counter("dcsim.throttled_steps_wax").Add(int64(withWax.throttled))
		c.Obs.Counter("dcsim.relocated_steps_nowax").Add(int64(noWax.relocated))
		c.Obs.Counter("dcsim.relocated_steps_wax").Add(int64(withWax.relocated))
	}
	out.OnsetNoWaxS = noWax.onset
	out.OnsetWithWaxS = withWax.onset
	if !math.IsNaN(noWax.onset) && !math.IsNaN(withWax.onset) {
		out.DelayHours = (withWax.onset - noWax.onset) / units.Hour
	}
	return out, nil
}
