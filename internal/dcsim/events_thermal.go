package dcsim

import (
	"errors"

	"repro/internal/pcm"
	"repro/internal/server"
	"repro/internal/timeseries"
	"repro/internal/workload"
)

// Event-level thermal integration: the paper "extend[s] DCSim to model
// thermal time shifting with PCM using wax melting characteristics derived
// from extensive Icepak simulations". Here each simulated server carries
// its own wax state, advanced from its own utilization as the event engine
// produces it — the per-server version of the fluid run, used to verify
// that the fluid extrapolation holds when utilizations are noisy and
// discrete rather than exactly the trace.

// ThermalEventResult extends EventResult with the thermal outcome.
type ThermalEventResult struct {
	*EventResult
	// CoolingLoadW is the group's cooling load (power minus net wax
	// absorption), W.
	CoolingLoadW *timeseries.Series
	// PowerW is the group's electrical draw, W.
	PowerW *timeseries.Series
	// WaxLiquid is the mean liquid fraction across servers.
	WaxLiquid *timeseries.Series
}

// RunEventsWithThermal runs the event engine and advances one wax state
// per simulated server from its sampled utilization. rom carries the wax
// melting characteristics (pass the same ROM the fluid engine uses).
func RunEventsWithThermal(tr *workload.Trace, opts EventOptions, rom *server.ROM, withWax bool) (*ThermalEventResult, error) {
	if rom == nil {
		return nil, errors.New("dcsim: thermal event run requires a ROM")
	}
	// First the queueing pass: it yields the sampled utilization per
	// interval. We re-run it capturing per-server busy fractions per
	// sample by post-processing: the engine reports only aggregates, so
	// drive per-server thermal state from the cluster utilization plus the
	// per-server deviation (round-robin keeps deviations small; they are
	// what this verification is about). To keep the engine single-pass we
	// approximate each server's instantaneous utilization as the sampled
	// cluster utilization scaled by its time-averaged relative load.
	res, err := RunEvents(tr, opts)
	if err != nil {
		return nil, err
	}
	n := res.Utilization.Len()
	out := &ThermalEventResult{EventResult: res}
	if out.CoolingLoadW, err = timeseries.New(res.Utilization.Start, res.Utilization.Step, n); err != nil {
		return nil, err
	}
	out.PowerW = out.CoolingLoadW.Clone()
	out.WaxLiquid = out.CoolingLoadW.Clone()

	meanUtil := 0.0
	for _, u := range res.UtilPerServer {
		meanUtil += u
	}
	meanUtil /= float64(len(res.UtilPerServer))

	waxes := make([]*pcm.State, opts.Servers)
	relLoad := make([]float64, opts.Servers)
	for i := range waxes {
		if withWax {
			if waxes[i], err = rom.NewWaxState(); err != nil {
				return nil, err
			}
		}
		relLoad[i] = 1.0
		if meanUtil > 0 {
			relLoad[i] = res.UtilPerServer[i] / meanUtil
		}
	}

	dt := res.Utilization.Step
	cfg := rom.Cfg
	for s := 0; s < n; s++ {
		uCluster := res.Utilization.Values[s]
		var power, cool, liquid float64
		for i := range waxes {
			u := uCluster * relLoad[i]
			if u > 1 {
				u = 1
			}
			p := cfg.PowerAt(u, 1)
			c := p
			if waxes[i] != nil {
				q := waxes[i].ExchangeWithAir(rom.WakeAirC(u, 1), rom.HA, dt)
				c = p - q/dt
				liquid += waxes[i].LiquidFraction()
			}
			power += p
			cool += c
		}
		out.PowerW.Values[s] = power
		out.CoolingLoadW.Values[s] = cool
		out.WaxLiquid.Values[s] = liquid / float64(len(waxes))
	}
	return out, nil
}
