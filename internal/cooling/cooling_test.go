package cooling

import (
	"math"
	"testing"

	"repro/internal/timeseries"
	"repro/internal/units"
)

func series(t *testing.T, step float64, vals []float64) *timeseries.Series {
	t.Helper()
	s, err := timeseries.FromValues(0, step, vals)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSystemValidate(t *testing.T) {
	if (System{CapacityW: 0, COP: 3}).Validate() == nil {
		t.Error("accepted zero capacity")
	}
	if (System{CapacityW: 100, COP: 0}).Validate() == nil {
		t.Error("accepted zero COP")
	}
	if (System{CapacityW: 100, COP: 3.5}).Validate() != nil {
		t.Error("rejected valid system")
	}
}

func TestTariffWindows(t *testing.T) {
	p := DefaultTariff()
	if got := p.PriceAt(12 * units.Hour); got != 0.13 {
		t.Errorf("noon price = %v, want peak 0.13", got)
	}
	if got := p.PriceAt(3 * units.Hour); got != 0.08 {
		t.Errorf("3am price = %v, want off-peak 0.08", got)
	}
	// Boundaries: 7am is peak, 7pm is off-peak.
	if p.PriceAt(7*units.Hour) != 0.13 || p.PriceAt(19*units.Hour) != 0.08 {
		t.Error("peak window boundaries wrong")
	}
	// Second day wraps.
	if p.PriceAt(36*units.Hour) != 0.13 {
		t.Error("tariff does not wrap across days")
	}
	if p.PriceAt(-2*units.Hour) != 0.08 {
		t.Error("negative time should wrap to 22:00 off-peak")
	}
}

func TestEnergyCost(t *testing.T) {
	// 3.5 kW of heat for 1 hour at COP 3.5 = 1 kWh of plant electricity.
	load := series(t, units.Hour, []float64{3500})
	sys := System{CapacityW: 1e4, COP: 3.5}
	tariff := DefaultTariff()
	cost, err := EnergyCost(load, sys, tariff)
	if err != nil {
		t.Fatal(err)
	}
	// Hour 0-1 is off-peak: $0.08.
	if math.Abs(cost-0.08) > 1e-9 {
		t.Errorf("cost = %v, want 0.08", cost)
	}
	if _, err := EnergyCost(nil, sys, tariff); err == nil {
		t.Error("accepted nil load")
	}
	if _, err := EnergyCost(load, System{}, tariff); err == nil {
		t.Error("accepted invalid system")
	}
}

func TestEnergyCostTimeOfUse(t *testing.T) {
	// Same total energy, shifted from peak to off-peak hours, must cost
	// less — the thermal time shifting advantage.
	sys := System{CapacityW: 1e6, COP: 3.5}
	tariff := DefaultTariff()
	peaky := series(t, units.Hour, make([]float64, 24))
	flat := series(t, units.Hour, make([]float64, 24))
	peaky.Values[13] = 24000 // all at 1pm
	flat.Values[2] = 24000   // all at 2am
	cp, err := EnergyCost(peaky, sys, tariff)
	if err != nil {
		t.Fatal(err)
	}
	cf, err := EnergyCost(flat, sys, tariff)
	if err != nil {
		t.Fatal(err)
	}
	if cf >= cp {
		t.Errorf("off-peak cost %v >= peak cost %v", cf, cp)
	}
	if math.Abs(cp/cf-0.13/0.08) > 1e-9 {
		t.Errorf("cost ratio = %v, want tariff ratio", cp/cf)
	}
}

func TestAnalyze(t *testing.T) {
	base := series(t, units.Hour, []float64{100, 150, 200, 150, 100, 90})
	pcm := series(t, units.Hour, []float64{100, 150, 176, 155, 110, 100})
	a, err := Analyze(base, pcm)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.PeakReduction-0.12) > 1e-9 {
		t.Errorf("peak reduction = %v, want 0.12", a.PeakReduction)
	}
	if a.PeakBaselineW != 200 || a.PeakWithPCMW != 176 {
		t.Errorf("peaks = %v/%v", a.PeakBaselineW, a.PeakWithPCMW)
	}
	// 12% reduction supports 13.6% more servers.
	if math.Abs(a.ExtraServersFraction-0.12/0.88) > 1e-9 {
		t.Errorf("extra servers = %v", a.ExtraServersFraction)
	}
	// Resolidify window: samples 3,4,5 run hotter = 3 hours.
	if math.Abs(a.ResolidifyHours-3) > 1e-9 {
		t.Errorf("resolidify hours = %v, want 3", a.ResolidifyHours)
	}
}

func TestAnalyzeErrors(t *testing.T) {
	s := series(t, 1, []float64{1, 2})
	if _, err := Analyze(nil, s); err == nil {
		t.Error("accepted nil baseline")
	}
	short := series(t, 1, []float64{1})
	if _, err := Analyze(s, short); err == nil {
		t.Error("accepted mismatched lengths")
	}
	zero := series(t, 1, []float64{0, 0})
	if _, err := Analyze(zero, s); err == nil {
		t.Error("accepted zero baseline peak")
	}
}

func TestSystemForPeak(t *testing.T) {
	load := series(t, units.Hour, []float64{50, 80, 60})
	sys, err := SystemForPeak(load, 0.1, 3.5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sys.CapacityW-88) > 1e-9 {
		t.Errorf("capacity = %v, want 88", sys.CapacityW)
	}
	if _, err := SystemForPeak(load, -0.1, 3.5); err == nil {
		t.Error("accepted negative margin")
	}
	if _, err := SystemForPeak(nil, 0.1, 3.5); err == nil {
		t.Error("accepted nil load")
	}
}

func TestPUE(t *testing.T) {
	it := series(t, 3600, []float64{1000, 1000})
	cool := series(t, 3600, []float64{1000, 1000}) // all heat removed mechanically
	sys := System{CapacityW: 1e6, COP: 4}
	// PUE = (1 + 1/4 + 0.08) / 1 = 1.33.
	got, err := PUE(it, cool, sys, 0.08)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-1.33) > 1e-9 {
		t.Errorf("PUE = %v, want 1.33", got)
	}
	// Free-cooling part of the load improves PUE.
	half := series(t, 3600, []float64{500, 500})
	better, err := PUE(it, half, sys, 0.08)
	if err != nil {
		t.Fatal(err)
	}
	if better >= got {
		t.Error("less chiller load should lower PUE")
	}
	if _, err := PUE(nil, cool, sys, 0.08); err == nil {
		t.Error("accepted nil IT trace")
	}
	if _, err := PUE(it, cool, sys, -1); err == nil {
		t.Error("accepted negative overhead")
	}
	zero := series(t, 3600, []float64{0, 0})
	if _, err := PUE(zero, cool, sys, 0.08); err == nil {
		t.Error("accepted zero IT energy")
	}
}
