package cooling

import (
	"math"
	"testing"

	"repro/internal/timeseries"
	"repro/internal/units"
)

func TestOutsideAirDiurnal(t *testing.T) {
	o := TemperateClimate()
	warm := o.At(15 * units.Hour)
	cold := o.At(3 * units.Hour)
	if math.Abs(warm-(o.MeanC+o.AmplitudeK)) > 1e-9 {
		t.Errorf("warmest = %v, want %v", warm, o.MeanC+o.AmplitudeK)
	}
	if math.Abs(cold-(o.MeanC-o.AmplitudeK)) > 1e-9 {
		t.Errorf("coldest = %v, want %v", cold, o.MeanC-o.AmplitudeK)
	}
	// Day 2 repeats day 1.
	if math.Abs(o.At(39*units.Hour)-o.At(15*units.Hour)) > 1e-9 {
		t.Error("climate not day-periodic")
	}
}

func TestOutsideAirSeries(t *testing.T) {
	ref, _ := timeseries.New(0, 3600, 24)
	s := TemperateClimate().Series(ref)
	if s.Len() != 24 || s.Step != 3600 {
		t.Fatal("series geometry wrong")
	}
	if s.Values[15] <= s.Values[3] {
		t.Error("afternoon should be warmer than pre-dawn")
	}
}

func TestEconomizerValidate(t *testing.T) {
	if (Economizer{SetpointC: 22, ConductanceWPerK: 0, MaxW: 1}).Validate() == nil {
		t.Error("accepted zero conductance")
	}
	if (Economizer{SetpointC: 22, ConductanceWPerK: 1, MaxW: 0}).Validate() == nil {
		t.Error("accepted zero cap")
	}
}

func flatLoad(t *testing.T, w float64, hours int) *timeseries.Series {
	t.Helper()
	vals := make([]float64, hours)
	for i := range vals {
		vals[i] = w
	}
	s, err := timeseries.FromValues(0, 3600, vals)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSplitFreeCoolingNightOnly(t *testing.T) {
	// With a setpoint between the night low and day high, only night
	// hours are free-cooled.
	load := flatLoad(t, 10000, 24)
	climate := TemperateClimate() // 11-25 degC
	econ := Economizer{SetpointC: 18, ConductanceWPerK: 5000, MaxW: 50000}
	res, err := SplitFreeCooling(load, climate, econ)
	if err != nil {
		t.Fatal(err)
	}
	if res.FreeFraction <= 0 || res.FreeFraction >= 1 {
		t.Fatalf("free fraction = %v, want partial", res.FreeFraction)
	}
	// 3 am is fully free (deficit 7 K * 5 kW/K > load); 3 pm is all
	// chiller.
	if res.ChillerLoadW.Values[3] > 1 {
		t.Errorf("3 am chiller load = %v, want 0", res.ChillerLoadW.Values[3])
	}
	if res.ChillerLoadW.Values[15] < 9999 {
		t.Errorf("3 pm chiller load = %v, want full", res.ChillerLoadW.Values[15])
	}
	// Energy books.
	if math.Abs(res.FreeJ+res.ChillerJ-load.Integral()) > 1 {
		t.Error("free + chiller != total")
	}
}

func TestSplitFreeCoolingCaps(t *testing.T) {
	load := flatLoad(t, 10000, 24)
	climate := TemperateClimate()
	econ := Economizer{SetpointC: 30, ConductanceWPerK: 1e6, MaxW: 2500}
	res, err := SplitFreeCooling(load, climate, econ)
	if err != nil {
		t.Fatal(err)
	}
	// Cap of 2.5 kW against a 10 kW load: exactly 25% free.
	if math.Abs(res.FreeFraction-0.25) > 1e-9 {
		t.Errorf("capped free fraction = %v, want 0.25", res.FreeFraction)
	}
}

func TestSplitFreeCoolingValidation(t *testing.T) {
	if _, err := SplitFreeCooling(nil, TemperateClimate(), Economizer{SetpointC: 20, ConductanceWPerK: 1, MaxW: 1}); err == nil {
		t.Error("accepted nil load")
	}
	load := flatLoad(t, 1, 2)
	if _, err := SplitFreeCooling(load, TemperateClimate(), Economizer{}); err == nil {
		t.Error("accepted invalid economizer")
	}
}

func TestTimeOfUseSavings(t *testing.T) {
	sys := System{CapacityW: 1e6, COP: 3.5}
	tariff := DefaultTariff()
	// Baseline: all cooling at 1 pm; PCM: same energy at 2 am.
	base := flatLoad(t, 0, 24)
	base.Values[13] = 35000
	pcm := flatLoad(t, 0, 24)
	pcm.Values[2] = 35000
	b, p, err := TimeOfUseSavings(base, pcm, sys, tariff)
	if err != nil {
		t.Fatal(err)
	}
	if p >= b {
		t.Errorf("PCM-shifted cost %v >= baseline %v", p, b)
	}
	if math.Abs(b/p-0.13/0.08) > 1e-9 {
		t.Errorf("cost ratio %v, want the tariff ratio", b/p)
	}
	if _, _, err := TimeOfUseSavings(nil, pcm, sys, tariff); err == nil {
		t.Error("accepted nil baseline")
	}
}

func TestCOPAt(t *testing.T) {
	sys := System{CapacityW: 1e6, COP: 3.5, COPSlopePerK: 0.02}
	if got := sys.COPAt(20); math.Abs(got-3.5) > 1e-12 {
		t.Errorf("COP at rating point = %v", got)
	}
	if sys.COPAt(30) >= sys.COPAt(20) {
		t.Error("hot condenser should degrade COP")
	}
	if sys.COPAt(10) <= sys.COPAt(20) {
		t.Error("cool condenser should improve COP")
	}
	// Floor at a quarter of rating.
	if got := sys.COPAt(500); math.Abs(got-3.5/4) > 1e-12 {
		t.Errorf("extreme COP = %v, want floor", got)
	}
	flat := System{CapacityW: 1, COP: 3.5}
	if flat.COPAt(40) != 3.5 {
		t.Error("zero slope should keep COP flat")
	}
}

func TestEnergyCostClimateCheaperAtNight(t *testing.T) {
	sys := System{CapacityW: 1e6, COP: 3.5, COPSlopePerK: 0.02}
	climate := TemperateClimate()
	tariff := ElectricityPrice{PeakPerKWh: 0.1, OffPeakPerKWh: 0.1} // flat tariff isolates the COP effect
	day := flatLoad(t, 0, 24)
	day.Values[14] = 35000
	night := flatLoad(t, 0, 24)
	night.Values[3] = 35000
	cDay, err := EnergyCostClimate(day, sys, tariff, climate)
	if err != nil {
		t.Fatal(err)
	}
	cNight, err := EnergyCostClimate(night, sys, tariff, climate)
	if err != nil {
		t.Fatal(err)
	}
	if cNight >= cDay {
		t.Errorf("night removal $%v should undercut day $%v at equal tariff", cNight, cDay)
	}
	if _, err := EnergyCostClimate(nil, sys, tariff, climate); err == nil {
		t.Error("accepted nil load")
	}
}
