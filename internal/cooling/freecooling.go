package cooling

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/timeseries"
	"repro/internal/units"
)

// The paper's introduction lists two "additional advantages" of shifting
// heat into the night: lower ambient temperatures open free-cooling
// (economizer) opportunities, and off-peak electricity is cheaper. This
// file models both so the experiments can quantify them.

// OutsideAir models a diurnal ambient temperature: a sinusoid with the
// warmest point mid-afternoon.
type OutsideAir struct {
	// MeanC and AmplitudeK set the daily band: Mean +/- Amplitude.
	MeanC, AmplitudeK float64
	// WarmestHour is the local hour of the daily maximum (typically ~15).
	WarmestHour float64
}

// TemperateClimate returns a mild climate where free cooling is available
// most nights: 18 +/- 7 degC, warmest at 3 pm.
func TemperateClimate() OutsideAir {
	return OutsideAir{MeanC: 18, AmplitudeK: 7, WarmestHour: 15}
}

// At returns the outside temperature at time t (seconds from local
// midnight).
func (o OutsideAir) At(t float64) float64 {
	h := t / units.Hour
	return o.MeanC + o.AmplitudeK*math.Cos(2*math.Pi*(h-o.WarmestHour)/24)
}

// Series samples the climate on the grid of the reference series.
func (o OutsideAir) Series(ref *timeseries.Series) *timeseries.Series {
	out := ref.Clone()
	for i := range out.Values {
		out.Values[i] = o.At(out.TimeAt(i))
	}
	return out
}

// Economizer is an air-side free-cooling stage in front of the chillers:
// whenever the outside air is below the supply setpoint it removes heat at
// a rate proportional to the temperature deficit, up to its airflow
// capacity.
type Economizer struct {
	// SetpointC is the supply temperature below which outside air can
	// carry the load.
	SetpointC float64
	// ConductanceWPerK converts the setpoint-minus-outside deficit to
	// removable heat (economizer airflow times air heat capacity).
	ConductanceWPerK float64
	// MaxW caps the stage.
	MaxW float64
}

// Validate reports configuration errors.
func (e Economizer) Validate() error {
	if e.ConductanceWPerK <= 0 || e.MaxW <= 0 {
		return fmt.Errorf("cooling: economizer needs positive conductance and cap")
	}
	return nil
}

// FreeCoolingResult splits a cooling load between the economizer and the
// chillers.
type FreeCoolingResult struct {
	// FreeJ and ChillerJ integrate the two paths.
	FreeJ, ChillerJ float64
	// FreeFraction is FreeJ over the total.
	FreeFraction float64
	// ChillerLoadW is what the mechanical plant still sees.
	ChillerLoadW *timeseries.Series
}

// SplitFreeCooling runs the economizer against a cooling-load trace under
// the given climate.
func SplitFreeCooling(load *timeseries.Series, climate OutsideAir, econ Economizer) (*FreeCoolingResult, error) {
	if err := econ.Validate(); err != nil {
		return nil, err
	}
	if load == nil || load.Len() == 0 {
		return nil, errors.New("cooling: empty load series")
	}
	res := &FreeCoolingResult{ChillerLoadW: load.Clone()}
	for i, w := range load.Values {
		deficit := econ.SetpointC - climate.At(load.TimeAt(i))
		free := 0.0
		if deficit > 0 {
			free = econ.ConductanceWPerK * deficit
			if free > econ.MaxW {
				free = econ.MaxW
			}
			if free > w {
				free = w
			}
		}
		res.FreeJ += free * load.Step
		res.ChillerJ += (w - free) * load.Step
		res.ChillerLoadW.Values[i] = w - free
	}
	total := res.FreeJ + res.ChillerJ
	if total > 0 {
		res.FreeFraction = res.FreeJ / total
	}
	return res, nil
}

// TimeOfUseSavings compares the electricity cost of removing two
// cooling-load traces (typically without and with PCM) under a tariff:
// the thermal time shift moves cooling energy from peak-priced to
// off-peak-priced hours even though the total heat is unchanged.
func TimeOfUseSavings(baseline, withPCM *timeseries.Series, sys System, tariff ElectricityPrice) (baseUSD, pcmUSD float64, err error) {
	if baseUSD, err = EnergyCost(baseline, sys, tariff); err != nil {
		return 0, 0, err
	}
	if pcmUSD, err = EnergyCost(withPCM, sys, tariff); err != nil {
		return 0, 0, err
	}
	return baseUSD, pcmUSD, nil
}

// ColdClimate returns a winter-dominant climate: 6 +/- 6 degC, where the
// economizer can carry most of the load around the clock.
func ColdClimate() OutsideAir {
	return OutsideAir{MeanC: 6, AmplitudeK: 6, WarmestHour: 15}
}

// HotClimate returns a summer-dominant climate: 30 +/- 7 degC, where free
// cooling is rare and the chillers fight condenser lift all day.
func HotClimate() OutsideAir {
	return OutsideAir{MeanC: 30, AmplitudeK: 7, WarmestHour: 15}
}
