// Package cooling defines the datacenter cooling-side quantities the
// evaluation reports: the cooling load (the power the thermal-control
// system must remove to hold temperature), peak analysis between wax and
// no-wax runs, resolidification windows, the sizing of a cooling system
// against its peak load, and the electricity cost of removing heat under
// time-of-use pricing.
package cooling

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/timeseries"
	"repro/internal/units"
)

// System describes a datacenter cooling plant.
type System struct {
	// CapacityW is the peak heat removal the plant sustains indefinitely.
	CapacityW float64
	// COP is the coefficient of performance at the 20 degC rating point:
	// watts of heat removed per watt of electricity drawn by the plant
	// (chillers+CRAC+tower ~3-4).
	COP float64
	// COPSlopePerK degrades (positive values) the COP per kelvin of
	// outside temperature above 20 degC and improves it below — the
	// condenser-side lift effect. Zero keeps the COP flat.
	COPSlopePerK float64
}

// COPAt returns the coefficient of performance at the given outside air
// temperature, floored at a quarter of the rating so extreme inputs stay
// physical.
func (s System) COPAt(outsideC float64) float64 {
	cop := s.COP * (1 - s.COPSlopePerK*(outsideC-20))
	if floor := s.COP / 4; cop < floor {
		return floor
	}
	return cop
}

// Validate reports configuration errors.
func (s System) Validate() error {
	if s.CapacityW <= 0 {
		return fmt.Errorf("cooling: non-positive capacity %v", s.CapacityW)
	}
	if s.COP <= 0 {
		return fmt.Errorf("cooling: non-positive COP %v", s.COP)
	}
	return nil
}

// ElectricityPrice is a two-tier time-of-use tariff in $/kWh (the paper
// uses $0.13 peak, $0.08 off-peak).
type ElectricityPrice struct {
	PeakPerKWh    float64
	OffPeakPerKWh float64
	// PeakStartH and PeakEndH bound the daily peak-price window in local
	// hours (e.g. 7 to 19 following Figure 1's 7am-7pm peak period).
	PeakStartH, PeakEndH float64
}

// DefaultTariff returns the paper's tariff with a 7am-7pm peak window.
func DefaultTariff() ElectricityPrice {
	return ElectricityPrice{PeakPerKWh: 0.13, OffPeakPerKWh: 0.08, PeakStartH: 7, PeakEndH: 19}
}

// PriceAt returns the $/kWh price at time t (seconds from local midnight).
func (p ElectricityPrice) PriceAt(t float64) float64 {
	h := math.Mod(t/units.Hour, 24)
	if h < 0 {
		h += 24
	}
	if h >= p.PeakStartH && h < p.PeakEndH {
		return p.PeakPerKWh
	}
	return p.OffPeakPerKWh
}

// EnergyCost integrates the electricity cost in dollars of removing the
// cooling-load series with the given plant: load/COP is plant power, priced
// by the tariff sample by sample.
func EnergyCost(load *timeseries.Series, sys System, tariff ElectricityPrice) (float64, error) {
	if err := sys.Validate(); err != nil {
		return 0, err
	}
	if load == nil || load.Len() == 0 {
		return 0, errors.New("cooling: empty load series")
	}
	cost := 0.0
	for i, w := range load.Values {
		plantW := w / sys.COP
		kwh := units.JoulesToKWh(plantW * load.Step)
		cost += kwh * tariff.PriceAt(load.TimeAt(i))
	}
	return cost, nil
}

// EnergyCostClimate is EnergyCost with the plant's COP varying with the
// outside air temperature: removing heat at night is cheaper both because
// of the tariff and because the chiller lift is smaller.
func EnergyCostClimate(load *timeseries.Series, sys System, tariff ElectricityPrice, climate OutsideAir) (float64, error) {
	if err := sys.Validate(); err != nil {
		return 0, err
	}
	if load == nil || load.Len() == 0 {
		return 0, errors.New("cooling: empty load series")
	}
	cost := 0.0
	for i, w := range load.Values {
		t := load.TimeAt(i)
		plantW := w / sys.COPAt(climate.At(t))
		kwh := units.JoulesToKWh(plantW * load.Step)
		cost += kwh * tariff.PriceAt(t)
	}
	return cost, nil
}

// PeakAnalysis compares a baseline (no wax) cooling-load trace against a
// PCM-equipped one.
type PeakAnalysis struct {
	// PeakBaselineW and PeakWithPCMW are the trace maxima.
	PeakBaselineW, PeakWithPCMW float64
	// PeakReduction is 1 - with/without, the paper's headline metric.
	PeakReduction float64
	// PeakTimeBaselineS and PeakTimeWithPCMS locate the peaks.
	PeakTimeBaselineS, PeakTimeWithPCMS float64
	// ResolidifyHours is the longest contiguous stretch (hours) where the
	// PCM trace exceeds the baseline — the wax releasing its stored heat
	// (the paper observes six to nine hours).
	ResolidifyHours float64
	// ExtraServersFraction is how many more servers the same cooling
	// system supports when every server (old and new) carries wax:
	// (1+a)(1-r) = 1, so a = r/(1-r).
	ExtraServersFraction float64
}

// Analyze computes the peak analysis for two compatible traces.
func Analyze(baseline, withPCM *timeseries.Series) (*PeakAnalysis, error) {
	if baseline == nil || withPCM == nil {
		return nil, errors.New("cooling: nil trace")
	}
	if baseline.Len() == 0 || baseline.Len() != withPCM.Len() || baseline.Step != withPCM.Step {
		return nil, fmt.Errorf("cooling: incompatible traces (%d/%d samples)", baseline.Len(), withPCM.Len())
	}
	pb, tb := baseline.Peak()
	pw, tw := withPCM.Peak()
	if pb <= 0 {
		return nil, errors.New("cooling: non-positive baseline peak")
	}
	r := 1 - pw/pb
	a := &PeakAnalysis{
		PeakBaselineW:     pb,
		PeakWithPCMW:      pw,
		PeakReduction:     r,
		PeakTimeBaselineS: tb,
		PeakTimeWithPCMS:  tw,
	}
	if r < 1 {
		a.ExtraServersFraction = r / (1 - r)
	}
	// Longest contiguous stretch where the PCM trace runs hotter than the
	// baseline (with a small dead band against numerical noise).
	band := 0.001 * pb
	longest, current := 0, 0
	for i := range baseline.Values {
		if withPCM.Values[i] > baseline.Values[i]+band {
			current++
			if current > longest {
				longest = current
			}
		} else {
			current = 0
		}
	}
	a.ResolidifyHours = float64(longest) * baseline.Step / units.Hour
	return a, nil
}

// SystemForPeak sizes a cooling system to exactly the observed peak load
// with the given safety margin fraction (e.g. 0.1 for 10% headroom).
func SystemForPeak(load *timeseries.Series, margin, cop float64) (System, error) {
	if load == nil || load.Len() == 0 {
		return System{}, errors.New("cooling: empty load series")
	}
	if margin < 0 {
		return System{}, fmt.Errorf("cooling: negative margin %v", margin)
	}
	p, _ := load.Peak()
	sys := System{CapacityW: p * (1 + margin), COP: cop}
	return sys, sys.Validate()
}

// PUE computes the facility's power usage effectiveness over a run: total
// facility power (IT + cooling plant + fixed overheads) divided by IT
// power, integrated over the traces. The PCM does not remove heat — the
// integrated PUE barely moves — but it reshapes WHEN the plant draws,
// which is what the peak-sizing and tariff results monetize.
func PUE(itPowerW, coolingLoadW *timeseries.Series, sys System, overheadFraction float64) (float64, error) {
	if err := sys.Validate(); err != nil {
		return 0, err
	}
	if itPowerW == nil || coolingLoadW == nil || itPowerW.Len() == 0 ||
		itPowerW.Len() != coolingLoadW.Len() {
		return 0, errors.New("cooling: PUE needs matching non-empty traces")
	}
	if overheadFraction < 0 {
		return 0, fmt.Errorf("cooling: negative overhead fraction %v", overheadFraction)
	}
	itJ := itPowerW.Integral()
	if itJ <= 0 {
		return 0, errors.New("cooling: non-positive IT energy")
	}
	plantJ := coolingLoadW.Integral() / sys.COP
	return (itJ + plantJ + overheadFraction*itJ) / itJ, nil
}
