package main

import "testing"

func TestConfigFor(t *testing.T) {
	cases := map[string]string{
		"1u":          "1U low power",
		"2U":          "2U high throughput",
		"ocp":         "Open Compute high density",
		"OpenCompute": "Open Compute high density",
		"rd330":       "RD330 validation unit",
		"validation":  "RD330 validation unit",
	}
	for in, want := range cases {
		cfg := configFor(in)
		if cfg == nil || cfg.Name != want {
			t.Errorf("configFor(%q) = %v, want %q", in, cfg, want)
		}
	}
	if configFor("mainframe") != nil {
		t.Error("unknown server name should return nil")
	}
}
