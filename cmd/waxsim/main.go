// Command waxsim runs a single server's thermal model through a load
// schedule and prints the wax melt/freeze timeline: the micro-scale view
// behind the datacenter experiments.
//
// Usage:
//
//	waxsim [-server 1u|2u|ocp|rd330] [-melt C] [-hours N] [-idle H -load H]
//	       [-placebo] [-step S] [-csv file]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/server"
	"repro/internal/thermal"
	"repro/internal/units"
)

func main() {
	name := flag.String("server", "rd330", "server: 1u, 2u, ocp, or rd330 (validation unit)")
	melt := flag.Float64("melt", 0, "wax melting temperature in degC (0 = machine default)")
	hours := flag.Float64("hours", 25, "total simulated hours")
	idle := flag.Float64("idle", 1, "initial idle hours")
	load := flag.Float64("load", 12, "loaded hours after the idle phase")
	placebo := flag.Bool("placebo", false, "simulate empty (placebo) boxes instead of wax")
	step := flag.Float64("step", 5, "integration step in seconds")
	csvPath := flag.String("csv", "", "write the near-box trace to this CSV file")
	describe := flag.Bool("describe", false, "print the server inventory before simulating")
	flag.Parse()

	cfg := configFor(*name)
	if cfg == nil {
		fmt.Fprintf(os.Stderr, "waxsim: unknown server %q (want 1u, 2u, ocp, rd330)\n", *name)
		os.Exit(2)
	}
	if *describe {
		fmt.Print(cfg.Describe())
		fmt.Println()
	}
	schedule := func(t float64) float64 {
		switch {
		case t < *idle*units.Hour:
			return 0
		case t < (*idle+*load)*units.Hour:
			return 1
		default:
			return 0
		}
	}
	b, err := server.BuildModel(cfg, server.BuildOptions{
		WithWax:     !*placebo,
		PlaceboBox:  *placebo,
		MeltC:       *melt,
		Utilization: schedule,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "waxsim:", err)
		os.Exit(1)
	}

	probes := []thermal.Probe{
		{Name: "near box", Station: b.WakeSt},
		{Name: "outlet", Station: b.Outlet},
		{Name: "cpu1", Node: b.CPUs[0]},
	}
	if b.Wax != nil {
		probes = append(probes, thermal.Probe{Name: "liquid", Wax: b.Wax})
	}
	res, err := b.Model.Run(*hours*units.Hour, *step, 600, probes)
	if err != nil {
		fmt.Fprintln(os.Stderr, "waxsim:", err)
		os.Exit(1)
	}

	fmt.Printf("%s | wax: %t | flow %.1f CFM\n", cfg.Name, !*placebo,
		units.CubicMetersPerSecondToCFM(b.FlowM3s))
	if b.Wax != nil {
		enc := b.Wax.Enclosure()
		fmt.Printf("wax: %.2f l of %s, %.0f kJ latent, hA %.1f W/K\n",
			enc.WaxVolume(), enc.Material.Name, enc.LatentCapacity()/1000, b.WaxHA)
	}
	fmt.Printf("%6s %9s %9s %9s %8s\n", "hour", "nearBox", "outlet", "cpu1", "liquid")
	nb := res.Trace("near box")
	for i := 0; i < nb.Len(); i += 6 { // hourly rows from 10-minute samples
		h := nb.TimeAt(i) / units.Hour
		liquid := "-"
		if lt := res.Trace("liquid"); lt != nil {
			liquid = fmt.Sprintf("%7.0f%%", lt.Values[i]*100)
		}
		fmt.Printf("%6.1f %8.1fC %8.1fC %8.1fC %8s\n",
			h, nb.Values[i], res.Trace("outlet").Values[i], res.Trace("cpu1").Values[i], liquid)
	}

	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "waxsim:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := nb.WriteCSV(f, "near_box_degC"); err != nil {
			fmt.Fprintln(os.Stderr, "waxsim:", err)
			os.Exit(1)
		}
	}
}

func configFor(name string) *server.Config {
	switch strings.ToLower(name) {
	case "1u":
		return server.OneU()
	case "2u":
		return server.TwoU()
	case "ocp", "opencompute":
		return server.OpenCompute()
	case "rd330", "validation":
		return server.ValidationRD330()
	default:
		return nil
	}
}
