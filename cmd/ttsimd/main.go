// Command ttsimd serves the thermal time shifting experiments over HTTP.
//
// Usage:
//
//	ttsimd [-addr :8080] [-max-concurrent n] [-queue n] [-cache n]
//	       [-cache.journal path] [-run-timeout 0] [-rate r] [-burst b]
//	       [-client-rate r] [-client-burst b] [-max-clients n]
//	       [-drain-timeout 30s] [-debug.addr localhost:6060]
//
// Endpoints:
//
//	GET  /healthz                        liveness + build info (503 while draining)
//	GET  /metrics                        Prometheus exposition (?format=text for the legacy dump)
//	GET  /v1/experiments                 served experiment names
//	POST /v1/experiments/{name}          run (or reuse) one experiment
//	POST /v1/experiments/{name}/stream   run with live NDJSON telemetry
//	GET  /v1/runs/{id}/timeseries        a recorded run's flight-recorder series
//	GET  /v1/runs/{id}/alerts            a recorded run's alert rules and firings
//
// Identical concurrent requests share one execution; completed runs are
// cached so repeats are byte-identical. When the run pool and queue are
// full — or a -rate / -client-rate token bucket runs dry — the server
// answers 429 with an adaptive Retry-After derived from live queue depth
// and run age. -cache.journal makes the result cache crash-safe: every
// completed run is appended fsync'd and replayed on boot, so a restarted
// daemon serves the same bytes. SIGTERM (or SIGINT) drains: new requests
// get 503 while active runs finish, bounded by -drain-timeout.
//
// -debug.addr serves net/http/pprof (/debug/pprof/) and expvar
// (/debug/vars) on a SEPARATE listener, never the serving address:
// profiling endpoints expose heap contents and must not ride an address
// that might be reachable by clients.
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/admit"
	"repro/internal/serve"
)

// Exit codes: 0 success, 2 usage, 3 listen failure, 4 server failure,
// 5 unusable cache journal.
const (
	exitOK      = 0
	exitUsage   = 2
	exitListen  = 3
	exitServe   = 4
	exitJournal = 5
)

func main() {
	os.Exit(run(context.Background(), os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with its exits turned into return codes so tests can drive
// every path.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("ttsimd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", ":8080", "listen address")
	maxConcurrent := fs.Int("max-concurrent", 2, "simultaneously executing runs")
	queue := fs.Int("queue", 8, "requests allowed to wait for a run slot before 429")
	cacheEntries := fs.Int("cache", 64, "result cache entries")
	journalPath := fs.String("cache.journal", "", "crash-safe cache journal file; replayed on boot so cached runs survive restarts")
	runTimeout := fs.Duration("run-timeout", 0, "per-run execution budget once a run holds a slot (0 = unlimited); exceeded runs answer 504")
	rate := fs.Float64("rate", 0, "global admission rate in requests/second (0 = unlimited)")
	burst := fs.Float64("burst", 0, "global admission burst (defaults to -rate)")
	clientRate := fs.Float64("client-rate", 0, "per-client quota in requests/second (0 = unlimited); clients are keyed by X-Client-ID or remote host")
	clientBurst := fs.Float64("client-burst", 0, "per-client burst (defaults to -client-rate)")
	maxClients := fs.Int("max-clients", 0, "tracked per-client quota buckets before LRU eviction (0 = default 1024)")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second, "how long SIGTERM waits for active runs before cancelling them")
	debugAddr := fs.String("debug.addr", "", "serve net/http/pprof and expvar on this separate address (e.g. localhost:6060); never exposed on -addr")
	if err := fs.Parse(args); err != nil {
		return exitUsage
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "ttsimd: unexpected argument %q\n", fs.Arg(0))
		fs.Usage()
		return exitUsage
	}

	// The flag is literal: -queue 0 means no waiting room. Config reserves
	// zero for "use the default", so translate.
	depth := *queue
	if depth == 0 {
		depth = -1
	}
	srv, err := serve.New(serve.Config{
		MaxConcurrent: *maxConcurrent,
		QueueDepth:    depth,
		CacheEntries:  *cacheEntries,
		PersistPath:   *journalPath,
		RunTimeout:    *runTimeout,
		Admission: admit.Config{
			GlobalRate:  *rate,
			GlobalBurst: *burst,
			ClientRate:  *clientRate,
			ClientBurst: *clientBurst,
			MaxClients:  *maxClients,
		},
	})
	if err != nil {
		fmt.Fprintln(stderr, "ttsimd:", err)
		return exitJournal
	}
	defer srv.Close()
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(stderr, "ttsimd:", err)
		return exitListen
	}
	httpSrv := &http.Server{Handler: srv.Handler()}

	if *debugAddr != "" {
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			ln.Close()
			fmt.Fprintln(stderr, "ttsimd:", err)
			return exitListen
		}
		go http.Serve(dln, debugMux())
		fmt.Fprintf(stdout, "ttsimd: debug on http://%s/debug/pprof/\n", dln.Addr())
	}

	ctx, stop := signal.NotifyContext(ctx, os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()
	fmt.Fprintf(stdout, "ttsimd: serving on http://%s\n", ln.Addr())

	select {
	case err := <-errc:
		// Serve only returns on failure (Shutdown has not been called yet).
		fmt.Fprintln(stderr, "ttsimd:", err)
		return exitServe
	case <-ctx.Done():
	}

	fmt.Fprintln(stdout, "ttsimd: draining")
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	srv.Drain(drainCtx)
	if err := httpSrv.Shutdown(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintln(stderr, "ttsimd:", err)
		return exitServe
	}
	fmt.Fprintln(stdout, "ttsimd: stopped")
	return exitOK
}

// debugMux builds the diagnostics-only handler: the stdlib pprof pages
// and the expvar JSON dump. It is deliberately a fresh mux — registering
// these on the serving handler would expose heap and command-line
// contents to API clients.
func debugMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	return mux
}
