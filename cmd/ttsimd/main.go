// Command ttsimd serves the thermal time shifting experiments over HTTP.
//
// Usage:
//
//	ttsimd [-addr :8080] [-max-concurrent n] [-queue n] [-cache n]
//	       [-drain-timeout 30s]
//
// Endpoints:
//
//	GET  /healthz                       liveness (503 while draining)
//	GET  /metrics                       serving + simulation telemetry
//	GET  /v1/experiments                served experiment names
//	POST /v1/experiments/{name}         run (or reuse) one experiment
//	POST /v1/experiments/{name}/stream  run with live NDJSON telemetry
//
// Identical concurrent requests share one execution; completed runs are
// cached so repeats are byte-identical. When the run pool and queue are
// full the server answers 429 with Retry-After. SIGTERM (or SIGINT)
// drains: new requests get 503 while active runs finish, bounded by
// -drain-timeout.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/serve"
)

// Exit codes: 0 success, 2 usage, 3 listen failure, 4 server failure.
const (
	exitOK     = 0
	exitUsage  = 2
	exitListen = 3
	exitServe  = 4
)

func main() {
	os.Exit(run(context.Background(), os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with its exits turned into return codes so tests can drive
// every path.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("ttsimd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", ":8080", "listen address")
	maxConcurrent := fs.Int("max-concurrent", 2, "simultaneously executing runs")
	queue := fs.Int("queue", 8, "requests allowed to wait for a run slot before 429")
	cacheEntries := fs.Int("cache", 64, "result cache entries")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second, "how long SIGTERM waits for active runs before cancelling them")
	if err := fs.Parse(args); err != nil {
		return exitUsage
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "ttsimd: unexpected argument %q\n", fs.Arg(0))
		fs.Usage()
		return exitUsage
	}

	// The flag is literal: -queue 0 means no waiting room. Config reserves
	// zero for "use the default", so translate.
	depth := *queue
	if depth == 0 {
		depth = -1
	}
	srv := serve.New(serve.Config{
		MaxConcurrent: *maxConcurrent,
		QueueDepth:    depth,
		CacheEntries:  *cacheEntries,
	})
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(stderr, "ttsimd:", err)
		return exitListen
	}
	httpSrv := &http.Server{Handler: srv.Handler()}

	ctx, stop := signal.NotifyContext(ctx, os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()
	fmt.Fprintf(stdout, "ttsimd: serving on http://%s\n", ln.Addr())

	select {
	case err := <-errc:
		// Serve only returns on failure (Shutdown has not been called yet).
		fmt.Fprintln(stderr, "ttsimd:", err)
		return exitServe
	case <-ctx.Done():
	}

	fmt.Fprintln(stdout, "ttsimd: draining")
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	srv.Drain(drainCtx)
	if err := httpSrv.Shutdown(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintln(stderr, "ttsimd:", err)
		return exitServe
	}
	fmt.Fprintln(stdout, "ttsimd: stopped")
	return exitOK
}
