package main

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

// syncBuffer is a bytes.Buffer safe to read while run writes to it.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func TestUsageErrors(t *testing.T) {
	cases := [][]string{
		{"-no-such-flag"},
		{"-max-concurrent", "not-a-number"},
		{"positional-arg"},
	}
	for _, args := range cases {
		var out, errOut bytes.Buffer
		if got := run(context.Background(), args, &out, &errOut); got != exitUsage {
			t.Errorf("run(%v) = %d, want %d", args, got, exitUsage)
		}
		if !strings.Contains(errOut.String(), "Usage of ttsimd") {
			t.Errorf("run(%v): stderr lacks usage: %q", args, errOut.String())
		}
	}
}

func TestListenFailure(t *testing.T) {
	var out, errOut bytes.Buffer
	if got := run(context.Background(), []string{"-addr", "localhost:99999"}, &out, &errOut); got != exitListen {
		t.Fatalf("run = %d, want %d (stderr %q)", got, exitListen, errOut.String())
	}
}

// TestServeAndGracefulShutdown boots the daemon on an ephemeral port,
// exercises it over HTTP, then delivers a context cancellation (the
// SIGTERM path) and expects a clean exit.
func TestServeAndGracefulShutdown(t *testing.T) {
	var out, errOut syncBuffer
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan int, 1)
	go func() {
		done <- run(ctx, []string{"-addr", "127.0.0.1:0", "-drain-timeout", "5s"}, &out, &errOut)
	}()

	addrRE := regexp.MustCompile(`serving on http://(\S+)`)
	var addr string
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if m := addrRE.FindStringSubmatch(out.String()); m != nil {
			addr = m[1]
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if addr == "" {
		t.Fatalf("daemon never announced its address; stderr %q", errOut.String())
	}

	resp, err := http.Get(fmt.Sprintf("http://%s/healthz", addr))
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(b), "ok") {
		t.Fatalf("healthz = %d %q", resp.StatusCode, b)
	}

	resp, err = http.Post(fmt.Sprintf("http://%s/v1/experiments/table2", addr), "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	b, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(b), `"experiment":"table2"`) {
		t.Fatalf("run = %d %q", resp.StatusCode, b)
	}

	cancel()
	select {
	case code := <-done:
		if code != exitOK {
			t.Fatalf("exit code %d, want %d (stderr %q)", code, exitOK, errOut.String())
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon never exited after cancellation")
	}
	for _, want := range []string{"draining", "stopped"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("stdout %q lacks %q", out.String(), want)
		}
	}
}

// TestDebugListener boots the daemon with -debug.addr and checks the
// diagnostics endpoints answer on the debug listener — and only there:
// the serving listener must 404 them.
func TestDebugListener(t *testing.T) {
	var out, errOut syncBuffer
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan int, 1)
	go func() {
		done <- run(ctx, []string{"-addr", "127.0.0.1:0", "-debug.addr", "127.0.0.1:0", "-drain-timeout", "5s"}, &out, &errOut)
	}()

	serveRE := regexp.MustCompile(`serving on http://(\S+)`)
	debugRE := regexp.MustCompile(`debug on http://([^/\s]+)`)
	var serveAddr, debugAddr string
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if m := serveRE.FindStringSubmatch(out.String()); m != nil {
			serveAddr = m[1]
		}
		if m := debugRE.FindStringSubmatch(out.String()); m != nil {
			debugAddr = m[1]
		}
		if serveAddr != "" && debugAddr != "" {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if serveAddr == "" || debugAddr == "" {
		t.Fatalf("daemon never announced both addresses; stdout %q stderr %q", out.String(), errOut.String())
	}

	for _, path := range []string{"/debug/pprof/", "/debug/vars"} {
		resp, err := http.Get("http://" + debugAddr + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("debug listener %s = %d, want 200", path, resp.StatusCode)
		}
	}

	// The serving listener must not expose the profiler.
	resp, err := http.Get("http://" + serveAddr + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("serving listener /debug/pprof/ = %d, want 404", resp.StatusCode)
	}

	cancel()
	select {
	case code := <-done:
		if code != exitOK {
			t.Fatalf("exit code %d, want %d (stderr %q)", code, exitOK, errOut.String())
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon never exited after cancellation")
	}
}
