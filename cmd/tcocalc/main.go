// Command tcocalc prices a datacenter deployment with the paper's Table 2
// model (Equation 1) and evaluates the PCM scenarios for a given peak
// cooling reduction and throughput gain.
//
// Usage:
//
//	tcocalc [-kw 10000] [-servers 55440] [-cost 2000] [-wax 4]
//	        [-reduction 0.089] [-gain 0.33]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/tco"
)

func main() {
	kw := flag.Float64("kw", 10000, "datacenter critical power in kW")
	servers := flag.Int("servers", 55440, "server population")
	cost := flag.Float64("cost", 2000, "server purchase price, USD")
	wax := flag.Float64("wax", 4, "wax+container purchase per server, USD")
	reduction := flag.Float64("reduction", 0.089, "PCM peak cooling reduction (0-1)")
	gain := flag.Float64("gain", 0.33, "PCM peak throughput gain in the constrained scenario (0-1)")
	flag.Parse()

	p := tco.PaperParams()
	d := tco.Datacenter{
		CriticalPowerKW:     *kw,
		Servers:             *servers,
		ServerCostUSD:       *cost,
		WaxCostPerServerUSD: *wax,
	}
	b, err := tco.Monthly(p, d)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tcocalc:", err)
		os.Exit(1)
	}
	fmt.Printf("Equation 1 breakdown for %.0f kW, %d servers ($/month):\n", *kw, *servers)
	rows := []struct {
		name string
		v    float64
	}{
		{"FacilitySpaceCapEx", b.FacilitySpaceCapEx},
		{"UPSCapEx", b.UPSCapEx},
		{"PowerInfraCapEx", b.PowerInfraCapEx},
		{"CoolingInfraCapEx", b.CoolingInfraCapEx},
		{"RestCapEx", b.RestCapEx},
		{"DCInterest", b.DCInterest},
		{"ServerCapEx", b.ServerCapEx},
		{"WaxCapEx", b.WaxCapEx},
		{"ServerInterest", b.ServerInterest},
		{"DatacenterOpEx", b.DatacenterOpEx},
		{"ServerEnergyOpEx", b.ServerEnergyOpEx},
		{"ServerPowerOpEx", b.ServerPowerOpEx},
		{"CoolingEnergyOpEx", b.CoolingEnergyOpEx},
		{"RestOpEx", b.RestOpEx},
	}
	for _, r := range rows {
		fmt.Printf("  %-20s $%12.0f\n", r.name, r.v)
	}
	fmt.Printf("  %-20s $%12.0f  ($%.1fM/year)\n", "TOTAL", b.Total(), b.Total()*12/1e6)

	if *reduction > 0 && *reduction < 1 {
		s, err := tco.SmallerCoolingSystem(p, *kw, *servers, *reduction)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tcocalc:", err)
			os.Exit(1)
		}
		retro, err := tco.RetrofitSavings(p, *kw, *reduction)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tcocalc:", err)
			os.Exit(1)
		}
		fmt.Printf("\nPCM at %.1f%% peak cooling reduction:\n", *reduction*100)
		fmt.Printf("  smaller cooling system: $%.0fk/year\n", s.AnnualUSD/1000)
		fmt.Printf("  or %d extra servers (%.1f%%)\n", s.ExtraServers, s.ExtraServersFraction*100)
		fmt.Printf("  retrofit vs replacement plant: $%.1fM/year\n", retro/1e6)
	}
	if *gain > 0 {
		e, err := tco.TCOEfficiency(p, d, *gain)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tcocalc:", err)
			os.Exit(1)
		}
		fmt.Printf("\nPCM at +%.0f%% constrained peak throughput:\n", *gain*100)
		fmt.Printf("  with PCM:      $%.1fM/year\n", e.WithPCMAnnualUSD/1e6)
		fmt.Printf("  more machines: $%.1fM/year\n", e.MoreMachinesAnnualUSD/1e6)
		fmt.Printf("  TCO efficiency improvement: %.0f%%\n", e.Improvement*100)
	}
}
