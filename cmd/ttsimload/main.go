// Command ttsimload is an overload generator for ttsimd: it drives a
// server with mixed traffic — repeated cached requests, a stream of
// distinct uncached runs, and one greedy unpaced client built to blow
// through its quota — and reports what the server did about it.
//
// Usage:
//
//	ttsimload [-addr host:port] [-duration 30s] [-out BENCH_serve.json]
//	          [-cached n] [-uncached n] [-greedy n] [-rps r] [-seed n]
//	          [-retry-cap 2s]
//
// With no -addr the generator spawns a ttsimd serving stack in process
// on a loopback port, sized to overload quickly (a small run pool and a
// tight per-client quota), and replaces the "faults" experiment with a
// fast synthetic runner so uncached traffic measures the serving layer
// rather than the simulator. Against a real -addr the same personas run
// the genuine experiments.
//
// Every persona uses a retrying client: exponential backoff with jitter,
// honoring the server's Retry-After (capped at -retry-cap so a long hint
// does not stall the run). The report — written as JSON to -out and
// summarized on stdout — carries client-observed p50/p99 latency from an
// hdr-style histogram, the shed rate (429s per attempt), and the final
// outcome mix. The server-side view of the same run lives in the
// serve.latency_seconds histogram on /metrics.
//
// Exit codes: 0 success, 2 usage, 3 spawn/listen failure, 4 the run
// produced no successful request (the server was down, not overloaded).
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/admit"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/serve"
)

const (
	exitOK    = 0
	exitUsage = 2
	exitSpawn = 3
	exitDead  = 4
)

func main() {
	os.Exit(run(context.Background(), os.Args[1:], os.Stdout, os.Stderr))
}

// options are the parsed flags.
type options struct {
	addr     string
	duration time.Duration
	out      string
	cached   int
	uncached int
	greedy   int
	rps      float64
	seed     int64
	retryCap time.Duration
}

// report is the JSON written to -out: one record per run so trend tooling
// can diff shed rate and tail latency across commits.
type report struct {
	DurationS float64 `json:"duration_s"`
	Attempts  int64   `json:"attempts"`
	Completed int64   `json:"completed"`
	Hits      int64   `json:"hits"`
	Runs      int64   `json:"runs"`
	Shed      int64   `json:"shed"`
	GaveUp    int64   `json:"gave_up"`
	Errors    int64   `json:"errors"`
	Retries   int64   `json:"retries"`
	ShedRate  float64 `json:"shed_rate"`
	RPS       float64 `json:"rps"`
	P50Ms     float64 `json:"p50_ms"`
	P99Ms     float64 `json:"p99_ms"`
}

// counters aggregate worker outcomes; the histogram holds end-to-end
// latency of completed requests on the same hdr ladder the server uses.
type counters struct {
	attempts, completed, hits, runs atomic.Int64
	shed, gaveUp, errors, retries   atomic.Int64
	latency                         *obs.Histogram
}

func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("ttsimload", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var o options
	fs.StringVar(&o.addr, "addr", "", "target ttsimd address (empty = spawn an in-process server)")
	fs.DurationVar(&o.duration, "duration", 30*time.Second, "how long to generate load")
	fs.StringVar(&o.out, "out", "", "write the JSON report here (empty = stdout summary only)")
	fs.IntVar(&o.cached, "cached", 2, "paced workers repeating one cacheable request")
	fs.IntVar(&o.uncached, "uncached", 2, "paced workers issuing distinct uncached runs")
	fs.IntVar(&o.greedy, "greedy", 1, "unpaced workers sharing one client identity (quota pressure)")
	fs.Float64Var(&o.rps, "rps", 25, "request pacing per paced worker")
	fs.Int64Var(&o.seed, "seed", 1, "jitter and run-parameter seed")
	fs.DurationVar(&o.retryCap, "retry-cap", 2*time.Second, "longest backoff honored from Retry-After")
	if err := fs.Parse(args); err != nil {
		return exitUsage
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "ttsimload: unexpected argument %q\n", fs.Arg(0))
		fs.Usage()
		return exitUsage
	}

	base := o.addr
	if base == "" {
		addr, stop, err := spawn()
		if err != nil {
			fmt.Fprintln(stderr, "ttsimload:", err)
			return exitSpawn
		}
		defer stop()
		base = addr
		fmt.Fprintf(stdout, "ttsimload: spawned ttsimd on %s\n", base)
	}
	baseURL := "http://" + base

	c := &counters{latency: obs.New().Histogram("load.latency_seconds", obs.LatencySecondsBuckets())}
	runCtx, cancel := context.WithTimeout(ctx, o.duration)
	defer cancel()
	start := time.Now()

	var wg sync.WaitGroup
	worker := func(id int, fn func(*rand.Rand, *retryClient)) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(o.seed + int64(id)))
			rc := &retryClient{c: &http.Client{Timeout: 30 * time.Second}, capSleep: o.retryCap, counts: c}
			fn(rng, rc)
		}()
	}
	pace := time.Duration(float64(time.Second) / o.rps)
	seq := new(atomic.Int64)
	for i := 0; i < o.cached; i++ {
		worker(i, func(rng *rand.Rand, rc *retryClient) {
			paceLoop(runCtx, pace, func() {
				rc.post(runCtx, baseURL+"/v1/experiments/fig10", fmt.Sprintf("cached-%d", rng.Int63n(2)), "")
			})
		})
	}
	for i := 0; i < o.uncached; i++ {
		worker(100+i, func(rng *rand.Rand, rc *retryClient) {
			paceLoop(runCtx, pace, func() {
				body := fmt.Sprintf(`{"faults":{"seed":%d}}`, seq.Add(1))
				rc.post(runCtx, baseURL+"/v1/experiments/faults", fmt.Sprintf("uncached-%d", rng.Int63n(2)), body)
			})
		})
	}
	for i := 0; i < o.greedy; i++ {
		worker(200+i, func(_ *rand.Rand, rc *retryClient) {
			// No pacing and no retries: the greedy tenant measures how the
			// server sheds, not how politely a client can wait.
			for runCtx.Err() == nil {
				rc.postOnce(runCtx, baseURL+"/v1/experiments/fig10", "greedy", "")
			}
		})
	}
	wg.Wait()
	elapsed := time.Since(start)

	r := report{
		DurationS: elapsed.Seconds(),
		Attempts:  c.attempts.Load(),
		Completed: c.completed.Load(),
		Hits:      c.hits.Load(),
		Runs:      c.runs.Load(),
		Shed:      c.shed.Load(),
		GaveUp:    c.gaveUp.Load(),
		Errors:    c.errors.Load(),
		Retries:   c.retries.Load(),
		P50Ms:     c.latency.Quantile(0.50) * 1000,
		P99Ms:     c.latency.Quantile(0.99) * 1000,
	}
	if r.Attempts > 0 {
		r.ShedRate = float64(r.Shed) / float64(r.Attempts)
	}
	r.RPS = float64(r.Completed) / elapsed.Seconds()

	fmt.Fprintf(stdout,
		"ttsimload: %d attempts in %.1fs — %d completed (%d hits, %d runs), %d shed (%.1f%%), %d gave up, %d errors, %d retries, p50 %.1fms p99 %.1fms\n",
		r.Attempts, r.DurationS, r.Completed, r.Hits, r.Runs, r.Shed, 100*r.ShedRate, r.GaveUp, r.Errors, r.Retries, r.P50Ms, r.P99Ms)
	if o.out != "" {
		b, err := json.MarshalIndent(r, "", "  ")
		if err != nil {
			fmt.Fprintln(stderr, "ttsimload:", err)
			return exitSpawn
		}
		if err := os.WriteFile(o.out, append(b, '\n'), 0o644); err != nil {
			fmt.Fprintln(stderr, "ttsimload:", err)
			return exitSpawn
		}
		fmt.Fprintf(stdout, "ttsimload: wrote %s\n", o.out)
	}
	if r.Completed == 0 {
		fmt.Fprintln(stderr, "ttsimload: no request completed; the server is down, not overloaded")
		return exitDead
	}
	return exitOK
}

// paceLoop calls fn once per interval until ctx ends.
func paceLoop(ctx context.Context, interval time.Duration, fn func()) {
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		fn()
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
		}
	}
}

// retryClient posts with exponential backoff plus jitter, honoring the
// server's Retry-After up to a cap. One call records one attempt chain.
type retryClient struct {
	c        *http.Client
	capSleep time.Duration
	counts   *counters
}

// post issues the request, retrying shed (429) and draining (503)
// answers up to three times.
func (rc *retryClient) post(ctx context.Context, url, client, body string) {
	start := time.Now()
	backoff := 50 * time.Millisecond
	for attempt := 0; ; attempt++ {
		status, hit, retryAfter := rc.do(ctx, url, client, body)
		if status == http.StatusOK {
			rc.counts.completed.Add(1)
			rc.counts.latency.Observe(time.Since(start).Seconds())
			if hit {
				rc.counts.hits.Add(1)
			} else {
				rc.counts.runs.Add(1)
			}
			return
		}
		retriable := status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable
		if !retriable || attempt == 3 || ctx.Err() != nil {
			if retriable {
				rc.counts.gaveUp.Add(1)
			} else if status != 0 || ctx.Err() == nil {
				rc.counts.errors.Add(1)
			}
			return
		}
		rc.counts.retries.Add(1)
		sleep := backoff
		if retryAfter > sleep {
			sleep = retryAfter
		}
		if sleep > rc.capSleep {
			sleep = rc.capSleep
		}
		// Full jitter keeps the retrying fleet from re-arriving in lockstep.
		sleep = time.Duration(rand.Int63n(int64(sleep) + 1))
		select {
		case <-ctx.Done():
			return
		case <-time.After(sleep):
		}
		backoff *= 2
	}
}

// postOnce issues exactly one attempt with no retry.
func (rc *retryClient) postOnce(ctx context.Context, url, client, body string) {
	status, hit, _ := rc.do(ctx, url, client, body)
	if status == http.StatusOK {
		rc.counts.completed.Add(1)
		if hit {
			rc.counts.hits.Add(1)
		} else {
			rc.counts.runs.Add(1)
		}
	}
}

// do performs one HTTP attempt and classifies it.
func (rc *retryClient) do(ctx context.Context, url, client, body string) (status int, hit bool, retryAfter time.Duration) {
	rc.counts.attempts.Add(1)
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader([]byte(body)))
	if err != nil {
		return 0, false, 0
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Client-ID", client)
	resp, err := rc.c.Do(req)
	if err != nil {
		return 0, false, 0
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode == http.StatusTooManyRequests {
		rc.counts.shed.Add(1)
	}
	if s, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil {
		retryAfter = time.Duration(s) * time.Second
	}
	return resp.StatusCode, resp.Header.Get("X-Cache") == "hit", retryAfter
}

// spawn boots an in-process serving stack shaped to overload fast: two
// workers, a short queue, and a per-client quota the greedy persona will
// exhaust within its first second. The "faults" experiment is replaced
// with a synthetic runner (a few ms, seed-keyed) so uncached traffic
// exercises admission, dedup, pooling and caching rather than the
// simulator's own cost.
func spawn() (addr string, stop func(), err error) {
	srv, err := serve.New(serve.Config{
		MaxConcurrent: 2,
		QueueDepth:    4,
		Admission: admit.Config{
			GlobalRate: 500, GlobalBurst: 500,
			ClientRate: 20, ClientBurst: 20,
		},
	})
	if err != nil {
		return "", nil, err
	}
	srv.Register("faults", func(ctx context.Context, _ *core.Study, req *serve.Request) (any, error) {
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(time.Duration(2+req.FaultsSeed%8) * time.Millisecond):
		}
		return map[string]int64{"seed": req.FaultsSeed}, nil
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		srv.Close()
		return "", nil, err
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	return ln.Addr().String(), func() {
		hs.Close()
		srv.Close()
	}, nil
}
