package main

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestUsageErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-no-such-flag"},
		{"-duration", "not-a-duration"},
		{"positional-arg"},
	} {
		var out, errOut bytes.Buffer
		if got := run(context.Background(), args, &out, &errOut); got != exitUsage {
			t.Errorf("run(%v) = %d, want %d", args, got, exitUsage)
		}
		if !strings.Contains(errOut.String(), "Usage of ttsimload") {
			t.Errorf("run(%v): stderr lacks usage: %q", args, errOut.String())
		}
	}
}

func TestDeadServer(t *testing.T) {
	var out, errOut bytes.Buffer
	// A port nothing listens on: every attempt errors, nothing completes.
	got := run(context.Background(), []string{"-addr", "127.0.0.1:1", "-duration", "500ms", "-cached", "1", "-uncached", "0", "-greedy", "0"}, &out, &errOut)
	if got != exitDead {
		t.Fatalf("run = %d, want %d (stderr %q)", got, exitDead, errOut.String())
	}
}

// TestSpawnedOverloadRun drives the in-process server for two seconds and
// checks the report proves the hardening story: traffic completed, cache
// hits happened, the greedy client was shed with 429s, and the report
// landed on disk as valid JSON.
func TestSpawnedOverloadRun(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH_serve.json")
	var stdout, stderr bytes.Buffer
	got := run(context.Background(), []string{"-duration", "2s", "-out", out, "-seed", "7"}, &stdout, &stderr)
	if got != exitOK {
		t.Fatalf("run = %d, want 0\nstdout: %s\nstderr: %s", got, stdout.String(), stderr.String())
	}
	b, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var r report
	if err := json.Unmarshal(b, &r); err != nil {
		t.Fatalf("report is not JSON: %v\n%s", err, b)
	}
	if r.Completed == 0 {
		t.Error("no request completed")
	}
	if r.Hits == 0 {
		t.Error("no cache hit recorded")
	}
	if r.Shed == 0 {
		t.Error("the greedy client was never shed: overload not proven")
	}
	if r.ShedRate <= 0 || r.ShedRate > 1 {
		t.Errorf("shed_rate = %g, want (0, 1]", r.ShedRate)
	}
	if r.P50Ms <= 0 || r.P99Ms < r.P50Ms {
		t.Errorf("latency quantiles p50=%g p99=%g are not ordered", r.P50Ms, r.P99Ms)
	}
	if r.Attempts < r.Completed+r.Shed-r.Retries-r.GaveUp {
		t.Errorf("outcome counts exceed attempts: %+v", r)
	}
}
