// Command ttsim runs the thermal time shifting experiments and prints the
// rows and series the paper reports.
//
// Usage:
//
//	ttsim -exp table1|fig4|fig7|fig10|fig11|fig12|table2|tco|extensions|fleet|all
//	      [-csv dir] [-optimize] [-json file]
//	      [-fleet] [-fleet.mix 1U=13,2U=10,OCP=4] [-fleet.policy all] [-fleet.workers n]
//	      [-metrics file] [-trace file] [-pprof addr]
//
// -exp also accepts a comma-separated list (e.g. -exp fig11,fig12);
// experiments always run in the canonical order above, deduplicated.
// -csv writes every series the experiment produces into the directory as
// time,value CSV files. -optimize runs the melting-temperature search
// instead of using the calibrated per-machine defaults.
//
// Fleet mode (-fleet, or -exp fleet) runs the heterogeneous-fleet
// simulator: racks of mixed machine classes balanced by one or more
// policies (roundrobin, leastloaded, thermal), stepped in parallel across
// -fleet.workers workers. -fleet.mix sets the rack populations; prefix a
// class tag with "nowax:" to strip that slice's PCM retrofit.
//
// Telemetry: -metrics writes the run's counters, gauges, histograms and
// spans as JSON; -trace writes the simulation event log (PCM phase
// transitions, solver convergence) as JSON Lines; -pprof serves the
// stdlib net/http/pprof profiles plus a plain-text /metrics page on the
// given address for the duration of the run.
package main

import (
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	_ "net/http/pprof"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/obs"
	"repro/internal/pcm"
	"repro/internal/report"
	"repro/internal/tco"
	"repro/internal/timeseries"
)

// experimentOrder is the canonical run order; -exp lists are replayed in
// this order regardless of how the user wrote them.
var experimentOrder = []string{
	"table1", "fig4", "fig7", "fig10", "fig11", "fig12",
	"table2", "tco", "extensions", "fleet", "waxsweep", "check",
}

var runners = map[string]func(*core.Study, string) error{
	"table1":     runTable1,
	"fig4":       runFig4,
	"fig7":       runFig7,
	"fig10":      runFig10,
	"fig11":      runFig11,
	"fig12":      runFig12,
	"table2":     runTable2,
	"tco":        runTCO,
	"extensions": runExtensions,
	"fleet":      runFleet,
	"waxsweep":   runWaxSweep,
	"check":      runCheck,
}

// fleetSpec carries the -fleet.* flags into the fleet runner.
var fleetSpec = core.DefaultFleetSpec()

func main() {
	exp := flag.String("exp", "all", "experiment (or comma-separated list): table1, fig4, fig7, fig10, fig11, fig12, table2, tco, extensions, waxsweep, check, or all")
	csvDir := flag.String("csv", "", "directory to write series CSVs into")
	jsonPath := flag.String("json", "", "write a machine-readable results bundle to this file")
	optimize := flag.Bool("optimize", false, "search melting temperatures instead of using calibrated defaults")
	metricsPath := flag.String("metrics", "", "write telemetry (counters, histograms, spans) as JSON to this file")
	tracePath := flag.String("trace", "", "write the simulation event log as JSON Lines to this file")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof and /metrics on this address (e.g. localhost:6060) while running")
	fleetMode := flag.Bool("fleet", false, "run the heterogeneous-fleet experiment (alone, or added to an explicit -exp list)")
	fleetMix := flag.String("fleet.mix", "1U=13,2U=10,OCP=4", "fleet rack mix as tag=racks pairs; prefix a tag with nowax: to strip the retrofit")
	fleetPolicies := flag.String("fleet.policy", "all", "comma-separated balancing policies: roundrobin, leastloaded, thermal, or all")
	fleetWorkers := flag.Int("fleet.workers", 0, "fleet stepping workers (0 = one per CPU)")
	flag.Parse()

	spec := *exp
	if *fleetMode {
		// -fleet alone means just the fleet experiment; with an explicit
		// -exp it appends to the list instead.
		expSet := false
		flag.Visit(func(f *flag.Flag) { expSet = expSet || f.Name == "exp" })
		if expSet {
			spec += ",fleet"
		} else {
			spec = "fleet"
		}
	}
	names, err := selectExperiments(spec, experimentOrder)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ttsim:", err)
		os.Exit(2)
	}
	if fleetSpec, err = parseFleetFlags(*fleetMix, *fleetPolicies, *fleetWorkers); err != nil {
		fmt.Fprintln(os.Stderr, "ttsim:", err)
		os.Exit(2)
	}

	study := core.NewStudy()
	study.OptimizeMelt = *optimize

	var reg *obs.Registry
	if *metricsPath != "" || *tracePath != "" || *pprofAddr != "" {
		reg = obs.New()
		study.Observe(reg)
	}
	if *pprofAddr != "" {
		if err := servePprof(*pprofAddr, reg); err != nil {
			fmt.Fprintln(os.Stderr, "ttsim:", err)
			os.Exit(1)
		}
	}

	for _, name := range names {
		sp := reg.StartSpan("experiment/" + name)
		err := runners[name](study, *csvDir)
		sp.End()
		if err != nil {
			fmt.Fprintf(os.Stderr, "ttsim: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println()
	}

	// The bundle is written after the experiments so CollectResults reuses
	// the study's cached results instead of re-simulating.
	if *jsonPath != "" {
		bundle, err := study.CollectResults()
		if err != nil {
			fmt.Fprintln(os.Stderr, "ttsim:", err)
			os.Exit(1)
		}
		if err := writeFile(*jsonPath, bundle.WriteJSON); err != nil {
			fmt.Fprintln(os.Stderr, "ttsim:", err)
			os.Exit(1)
		}
		fmt.Printf("results bundle written to %s\n", *jsonPath)
	}
	if *metricsPath != "" {
		if err := writeFile(*metricsPath, reg.WriteJSON); err != nil {
			fmt.Fprintln(os.Stderr, "ttsim:", err)
			os.Exit(1)
		}
		fmt.Printf("metrics written to %s\n", *metricsPath)
	}
	if *tracePath != "" {
		if err := writeFile(*tracePath, reg.Events().WriteJSONL); err != nil {
			fmt.Fprintln(os.Stderr, "ttsim:", err)
			os.Exit(1)
		}
		fmt.Printf("trace written to %s\n", *tracePath)
	}
}

// selectExperiments parses a comma-separated -exp value against the
// canonical order. "all" (alone or in a list) expands to every
// experiment. Duplicates collapse, the result follows the canonical
// order, and every unknown name is reported in a single error.
func selectExperiments(spec string, order []string) ([]string, error) {
	want := make(map[string]bool)
	var unknown []string
	for _, part := range strings.Split(spec, ",") {
		name := strings.TrimSpace(part)
		switch {
		case name == "":
			continue
		case name == "all":
			for _, n := range order {
				want[n] = true
			}
		case runners[name] != nil:
			want[name] = true
		default:
			unknown = append(unknown, fmt.Sprintf("%q", name))
		}
	}
	if len(unknown) > 0 {
		return nil, fmt.Errorf("unknown experiment(s) %s (want one of %s, all)",
			strings.Join(unknown, ", "), strings.Join(order, ", "))
	}
	if len(want) == 0 {
		return nil, fmt.Errorf("no experiments selected (want one of %s, all)", strings.Join(order, ", "))
	}
	var names []string
	for _, n := range order {
		if want[n] {
			names = append(names, n)
		}
	}
	return names, nil
}

// servePprof binds addr synchronously (so bad addresses fail the run) and
// serves the default mux -- which net/http/pprof registered into -- plus a
// plain-text metrics page, in the background.
func servePprof(addr string, reg *obs.Registry) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("pprof listen: %w", err)
	}
	http.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if err := reg.WriteText(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	fmt.Fprintf(os.Stderr, "ttsim: pprof on http://%s/debug/pprof/ (metrics on /metrics)\n", ln.Addr())
	go func() {
		if err := http.Serve(ln, nil); err != nil {
			fmt.Fprintln(os.Stderr, "ttsim: pprof server:", err)
		}
	}()
	return nil
}

// writeFile creates path, streams write into it, and reports Close
// failures (a buffered flush error is a real write error).
func writeFile(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func writeCSV(dir, name string, s *timeseries.Series, header string) error {
	if dir == "" || s == nil {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	return writeFile(filepath.Join(dir, name+".csv"), func(w io.Writer) error {
		return s.WriteCSV(w, header)
	})
}

func runTable1(*core.Study, string) error {
	fmt.Print(report.Table1(pcm.DatacenterCriteria(), pcm.Families()))
	comm, err := pcm.CommercialParaffin(50)
	if err != nil {
		return err
	}
	fmt.Println()
	fmt.Print(report.CostComparison(pcm.Eicosane(), comm, 1.2*55*1008))
	return nil
}

func runFig4(s *core.Study, csvDir string) error {
	v, err := s.RunValidation()
	if err != nil {
		return err
	}
	fmt.Print(report.Validation(v))
	for name, tr := range map[string]*timeseries.Series{
		"fig4_real_wax": v.RealWax, "fig4_real_placebo": v.RealPlacebo,
		"fig4_model_wax": v.ModelWax, "fig4_model_placebo": v.ModelPlacebo,
	} {
		if err := writeCSV(csvDir, name, tr, "near_box_degC"); err != nil {
			return err
		}
	}
	return nil
}

func runFig7(s *core.Study, csvDir string) error {
	res, err := s.RunBlockageSweeps()
	if err != nil {
		return err
	}
	fmt.Print(report.Sweeps(res))
	if csvDir != "" {
		for _, r := range res {
			outlet := make([]float64, len(r.Points))
			for i, p := range r.Points {
				outlet[i] = p.OutletC
			}
			tr, err := timeseries.FromValues(0, 0.1, outlet)
			if err != nil {
				return err
			}
			name := "fig7_" + strings.Fields(r.Class.String())[0]
			if err := writeCSV(csvDir, name, tr, "outlet_degC_vs_blockage"); err != nil {
				return err
			}
		}
	}
	return nil
}

func runFig10(s *core.Study, csvDir string) error {
	fmt.Print(report.TraceSummary(s.Trace))
	if csvDir != "" {
		if err := os.MkdirAll(csvDir, 0o755); err != nil {
			return err
		}
		return writeFile(filepath.Join(csvDir, "fig10_trace.csv"), s.Trace.WriteCSV)
	}
	return nil
}

func runFig11(s *core.Study, csvDir string) error {
	fmt.Println("== Figure 11 / Section 5.1: cooling load, fully subscribed cooling ==")
	for _, m := range core.Classes {
		r, err := s.RunCoolingStudy(m)
		if err != nil {
			return err
		}
		fmt.Println()
		fmt.Print(report.Cooling(r))
		tag := strings.Fields(m.String())[0]
		if err := writeCSV(csvDir, "fig11_"+tag+"_baseline", r.Baseline, "cooling_W"); err != nil {
			return err
		}
		if err := writeCSV(csvDir, "fig11_"+tag+"_pcm", r.WithPCM, "cooling_W"); err != nil {
			return err
		}
	}
	return nil
}

func runFig12(s *core.Study, csvDir string) error {
	fmt.Println("== Figure 12 / Section 5.2: throughput, thermally constrained cooling ==")
	for _, m := range core.Classes {
		r, err := s.RunThroughputStudy(m)
		if err != nil {
			return err
		}
		fmt.Println()
		fmt.Print(report.Throughput(r))
		tag := strings.Fields(m.String())[0]
		for suffix, tr := range map[string]*timeseries.Series{
			"ideal": r.Ideal, "nowax": r.NoWax, "wax": r.WithWax,
		} {
			if err := writeCSV(csvDir, "fig12_"+tag+"_"+suffix, tr, "normalized_throughput"); err != nil {
				return err
			}
		}
	}
	return nil
}

func runTable2(s *core.Study, _ string) error {
	fmt.Print(report.Table2(s.TCO))
	return nil
}

func runTCO(s *core.Study, _ string) error {
	fmt.Println("== Section 5 economics summary (10 MW datacenter) ==")
	for _, m := range core.Classes {
		cfg := m.Config()
		sc := core.DefaultScenario(m)
		d := tco.Datacenter{
			CriticalPowerKW: s.CriticalPowerKW,
			Servers:         sc.Clusters * cfg.ClusterSize,
			ServerCostUSD:   cfg.CostUSD,
		}
		annual, err := tco.Annual(s.TCO, d)
		if err != nil {
			return err
		}
		fmt.Printf("\n%s: %d servers x $%.0f, TCO $%.1fM/yr\n", m, d.Servers, cfg.CostUSD, annual/1e6)
		cool, err := s.RunCoolingStudy(m)
		if err != nil {
			return err
		}
		thr, err := s.RunThroughputStudy(m)
		if err != nil {
			return err
		}
		fmt.Printf("  smaller cooling system: $%.0fk/yr | +%d servers | retrofit $%.1fM/yr\n",
			cool.AnnualCoolingSavingsUSD/1000, cool.ExtraServers, cool.RetrofitSavingsUSD/1e6)
		fmt.Printf("  constrained: +%.0f%% peak throughput -> %.0f%% TCO efficiency improvement\n",
			thr.PeakGain*100, thr.TCOEfficiencyImprovement*100)
	}
	return nil
}

// parseFleetFlags assembles the fleet spec from the -fleet.* flag values.
func parseFleetFlags(mix, policies string, workers int) (core.FleetSpec, error) {
	spec := core.FleetSpec{Workers: workers}
	var err error
	if spec.Mix, err = core.ParseFleetMix(mix); err != nil {
		return spec, err
	}
	if p := strings.TrimSpace(policies); p != "" && p != "all" {
		for _, name := range strings.Split(p, ",") {
			if name = strings.TrimSpace(name); name != "" {
				// Resolve aliases up front so a typo is a usage error
				// (exit 2), not a mid-run failure.
				pol, err := fleet.ParsePolicy(name)
				if err != nil {
					return spec, err
				}
				spec.Policies = append(spec.Policies, pol.Name())
			}
		}
	}
	return spec, nil
}

func runFleet(s *core.Study, csvDir string) error {
	fmt.Println("== Fleet: heterogeneous racks, policy-balanced, sharded execution ==")
	r, err := s.RunFleetStudy(fleetSpec)
	if err != nil {
		return err
	}
	fmt.Print(report.Fleet(r))
	for _, p := range r.Policies {
		if err := writeCSV(csvDir, "fleet_"+p.Policy, p.CoolingLoadW, "cooling_W"); err != nil {
			return err
		}
	}
	return nil
}

func runWaxSweep(s *core.Study, _ string) error {
	fmt.Println("== Sensitivity: peak cooling reduction vs wax quantity ==")
	for _, m := range core.Classes {
		pts, err := s.WaxQuantitySweep(m, []float64{0.25, 0.5, 1, 1.5, 2})
		if err != nil {
			return err
		}
		fmt.Printf("\n%s:\n", m)
		for _, p := range pts {
			bar := ""
			for i := 0; i < int(p.PeakReduction*200+0.5); i++ {
				bar += "#"
			}
			fmt.Printf("  %5.2f l  -%4.1f%%  %s\n", p.WaxLiters, p.PeakReduction*100, bar)
		}
	}
	fmt.Println()
	fmt.Println("the paper: \"the more wax that is added to a server, the greater the")
	fmt.Println("potential savings\" -- up to the design point; past it the oversized,")
	fmt.Println("tightly-coupled store melts early and releases into the shoulder.")
	return nil
}

func runExtensions(s *core.Study, _ string) error {
	fmt.Println("== Extensions: storage alternatives and night advantages ==")
	for _, m := range core.Classes {
		cw, err := s.CompareChilledWater(m)
		if err != nil {
			return err
		}
		comp, err := s.RunComplementarity(m)
		if err != nil {
			return err
		}
		night, err := s.RunNightAdvantages(m)
		if err != nil {
			return err
		}
		em, err := s.RunEmergencyRideThrough(m, core.DefaultEmergency())
		if err != nil {
			return err
		}
		rel, err := s.RunRelocationStudy(m, core.DefaultRelocation())
		if err != nil {
			return err
		}
		pl, err := s.ComparePlacement(m)
		if err != nil {
			return err
		}
		fmt.Println()
		fmt.Print(report.Extensions(cw, comp, night))
		fmt.Printf("  chiller-trip ride-through: %.1f min -> %.1f min (+%.1f min from the wax)\n",
			em.RideThroughNoWaxMin, em.RideThroughWithWaxMin, em.ExtensionMin)
		fmt.Printf("  constrained-peak relocation: %.0f -> %.0f server-h/day shipped out ($%.0fk/yr saved)\n",
			rel.RelocatedNoWax, rel.RelocatedWithWax, rel.AnnualSavingsUSD/1000)
		fmt.Printf("  placement: in-wake -%.1f%% (%.1f K swing) vs central/bulk -%.1f%% (%.1f K swing)\n",
			pl.WakeReduction*100, pl.WakeSwingK, pl.BulkReduction*100, pl.BulkSwingK)
	}
	return nil
}

func runCheck(s *core.Study, _ string) error {
	fmt.Println("== Self-check: measured vs paper (acceptance band 0.5x-2x) ==")
	bundle, err := s.CollectResults()
	if err != nil {
		return err
	}
	rows, allOK := bundle.SelfCheck()
	for _, r := range rows {
		mark := "ok  "
		if !r.OK {
			mark = "FAIL"
		}
		fmt.Printf("  [%s] %-40s measured %10.3f | paper %10.3f\n", mark, r.Name, r.Measured, r.Paper)
	}
	if !allOK {
		return fmt.Errorf("self-check found out-of-band results")
	}
	fmt.Println("all headline quantities within band")
	return nil
}
