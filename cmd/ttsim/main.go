// Command ttsim runs the thermal time shifting experiments and prints the
// rows and series the paper reports.
//
// Usage:
//
//	ttsim -exp table1|fig4|fig7|fig10|fig11|fig12|table2|tco|extensions|all
//	      [-csv dir] [-optimize]
//
// -csv writes every series the experiment produces into the directory as
// time,value CSV files. -optimize runs the melting-temperature search
// instead of using the calibrated per-machine defaults.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/core"
	"repro/internal/pcm"
	"repro/internal/report"
	"repro/internal/tco"
	"repro/internal/timeseries"
)

func main() {
	exp := flag.String("exp", "all", "experiment: table1, fig4, fig7, fig10, fig11, fig12, table2, tco, extensions, or all")
	csvDir := flag.String("csv", "", "directory to write series CSVs into")
	jsonPath := flag.String("json", "", "write a machine-readable results bundle to this file")
	optimize := flag.Bool("optimize", false, "search melting temperatures instead of using calibrated defaults")
	flag.Parse()

	study := core.NewStudy()
	study.OptimizeMelt = *optimize

	runners := map[string]func(*core.Study, string) error{
		"table1":     runTable1,
		"fig4":       runFig4,
		"fig7":       runFig7,
		"fig10":      runFig10,
		"fig11":      runFig11,
		"fig12":      runFig12,
		"table2":     runTable2,
		"tco":        runTCO,
		"extensions": runExtensions,
		"waxsweep":   runWaxSweep,
		"check":      runCheck,
	}
	order := []string{"table1", "fig4", "fig7", "fig10", "fig11", "fig12", "table2", "tco", "extensions", "waxsweep", "check"}

	names := []string{*exp}
	if *exp == "all" {
		names = order
	}
	if *jsonPath != "" {
		bundle, err := study.CollectResults()
		if err != nil {
			fmt.Fprintln(os.Stderr, "ttsim:", err)
			os.Exit(1)
		}
		f, err := os.Create(*jsonPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ttsim:", err)
			os.Exit(1)
		}
		if err := bundle.WriteJSON(f); err != nil {
			f.Close()
			fmt.Fprintln(os.Stderr, "ttsim:", err)
			os.Exit(1)
		}
		f.Close()
		fmt.Printf("results bundle written to %s\n\n", *jsonPath)
	}

	for _, name := range names {
		run, ok := runners[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "ttsim: unknown experiment %q (want one of %s, all)\n",
				name, strings.Join(order, ", "))
			os.Exit(2)
		}
		if err := run(study, *csvDir); err != nil {
			fmt.Fprintf(os.Stderr, "ttsim: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println()
	}
}

func writeCSV(dir, name string, s *timeseries.Series, header string) error {
	if dir == "" || s == nil {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, name+".csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	return s.WriteCSV(f, header)
}

func runTable1(*core.Study, string) error {
	fmt.Print(report.Table1(pcm.DatacenterCriteria(), pcm.Families()))
	comm, err := pcm.CommercialParaffin(50)
	if err != nil {
		return err
	}
	fmt.Println()
	fmt.Print(report.CostComparison(pcm.Eicosane(), comm, 1.2*55*1008))
	return nil
}

func runFig4(s *core.Study, csvDir string) error {
	v, err := s.RunValidation()
	if err != nil {
		return err
	}
	fmt.Print(report.Validation(v))
	for name, tr := range map[string]*timeseries.Series{
		"fig4_real_wax": v.RealWax, "fig4_real_placebo": v.RealPlacebo,
		"fig4_model_wax": v.ModelWax, "fig4_model_placebo": v.ModelPlacebo,
	} {
		if err := writeCSV(csvDir, name, tr, "near_box_degC"); err != nil {
			return err
		}
	}
	return nil
}

func runFig7(s *core.Study, csvDir string) error {
	res, err := s.RunBlockageSweeps()
	if err != nil {
		return err
	}
	fmt.Print(report.Sweeps(res))
	if csvDir != "" {
		for _, r := range res {
			outlet := make([]float64, len(r.Points))
			for i, p := range r.Points {
				outlet[i] = p.OutletC
			}
			tr, err := timeseries.FromValues(0, 0.1, outlet)
			if err != nil {
				return err
			}
			name := "fig7_" + strings.Fields(r.Class.String())[0]
			if err := writeCSV(csvDir, name, tr, "outlet_degC_vs_blockage"); err != nil {
				return err
			}
		}
	}
	return nil
}

func runFig10(s *core.Study, csvDir string) error {
	fmt.Print(report.TraceSummary(s.Trace))
	if csvDir != "" {
		if err := os.MkdirAll(csvDir, 0o755); err != nil {
			return err
		}
		f, err := os.Create(filepath.Join(csvDir, "fig10_trace.csv"))
		if err != nil {
			return err
		}
		defer f.Close()
		return s.Trace.WriteCSV(f)
	}
	return nil
}

func runFig11(s *core.Study, csvDir string) error {
	fmt.Println("== Figure 11 / Section 5.1: cooling load, fully subscribed cooling ==")
	for _, m := range core.Classes {
		r, err := s.RunCoolingStudy(m)
		if err != nil {
			return err
		}
		fmt.Println()
		fmt.Print(report.Cooling(r))
		tag := strings.Fields(m.String())[0]
		if err := writeCSV(csvDir, "fig11_"+tag+"_baseline", r.Baseline, "cooling_W"); err != nil {
			return err
		}
		if err := writeCSV(csvDir, "fig11_"+tag+"_pcm", r.WithPCM, "cooling_W"); err != nil {
			return err
		}
	}
	return nil
}

func runFig12(s *core.Study, csvDir string) error {
	fmt.Println("== Figure 12 / Section 5.2: throughput, thermally constrained cooling ==")
	for _, m := range core.Classes {
		r, err := s.RunThroughputStudy(m)
		if err != nil {
			return err
		}
		fmt.Println()
		fmt.Print(report.Throughput(r))
		tag := strings.Fields(m.String())[0]
		for suffix, tr := range map[string]*timeseries.Series{
			"ideal": r.Ideal, "nowax": r.NoWax, "wax": r.WithWax,
		} {
			if err := writeCSV(csvDir, "fig12_"+tag+"_"+suffix, tr, "normalized_throughput"); err != nil {
				return err
			}
		}
	}
	return nil
}

func runTable2(s *core.Study, _ string) error {
	fmt.Print(report.Table2(s.TCO))
	return nil
}

func runTCO(s *core.Study, _ string) error {
	fmt.Println("== Section 5 economics summary (10 MW datacenter) ==")
	for _, m := range core.Classes {
		cfg := m.Config()
		sc := core.DefaultScenario(m)
		d := tco.Datacenter{
			CriticalPowerKW: s.CriticalPowerKW,
			Servers:         sc.Clusters * cfg.ClusterSize,
			ServerCostUSD:   cfg.CostUSD,
		}
		annual, err := tco.Annual(s.TCO, d)
		if err != nil {
			return err
		}
		fmt.Printf("\n%s: %d servers x $%.0f, TCO $%.1fM/yr\n", m, d.Servers, cfg.CostUSD, annual/1e6)
		cool, err := s.RunCoolingStudy(m)
		if err != nil {
			return err
		}
		thr, err := s.RunThroughputStudy(m)
		if err != nil {
			return err
		}
		fmt.Printf("  smaller cooling system: $%.0fk/yr | +%d servers | retrofit $%.1fM/yr\n",
			cool.AnnualCoolingSavingsUSD/1000, cool.ExtraServers, cool.RetrofitSavingsUSD/1e6)
		fmt.Printf("  constrained: +%.0f%% peak throughput -> %.0f%% TCO efficiency improvement\n",
			thr.PeakGain*100, thr.TCOEfficiencyImprovement*100)
	}
	return nil
}

func runWaxSweep(s *core.Study, _ string) error {
	fmt.Println("== Sensitivity: peak cooling reduction vs wax quantity ==")
	for _, m := range core.Classes {
		pts, err := s.WaxQuantitySweep(m, []float64{0.25, 0.5, 1, 1.5, 2})
		if err != nil {
			return err
		}
		fmt.Printf("\n%s:\n", m)
		for _, p := range pts {
			bar := ""
			for i := 0; i < int(p.PeakReduction*200+0.5); i++ {
				bar += "#"
			}
			fmt.Printf("  %5.2f l  -%4.1f%%  %s\n", p.WaxLiters, p.PeakReduction*100, bar)
		}
	}
	fmt.Println()
	fmt.Println("the paper: \"the more wax that is added to a server, the greater the")
	fmt.Println("potential savings\" -- up to the design point; past it the oversized,")
	fmt.Println("tightly-coupled store melts early and releases into the shoulder.")
	return nil
}

func runExtensions(s *core.Study, _ string) error {
	fmt.Println("== Extensions: storage alternatives and night advantages ==")
	for _, m := range core.Classes {
		cw, err := s.CompareChilledWater(m)
		if err != nil {
			return err
		}
		comp, err := s.RunComplementarity(m)
		if err != nil {
			return err
		}
		night, err := s.RunNightAdvantages(m)
		if err != nil {
			return err
		}
		em, err := s.RunEmergencyRideThrough(m, core.DefaultEmergency())
		if err != nil {
			return err
		}
		rel, err := s.RunRelocationStudy(m, core.DefaultRelocation())
		if err != nil {
			return err
		}
		pl, err := s.ComparePlacement(m)
		if err != nil {
			return err
		}
		fmt.Println()
		fmt.Print(report.Extensions(cw, comp, night))
		fmt.Printf("  chiller-trip ride-through: %.1f min -> %.1f min (+%.1f min from the wax)\n",
			em.RideThroughNoWaxMin, em.RideThroughWithWaxMin, em.ExtensionMin)
		fmt.Printf("  constrained-peak relocation: %.0f -> %.0f server-h/day shipped out ($%.0fk/yr saved)\n",
			rel.RelocatedNoWax, rel.RelocatedWithWax, rel.AnnualSavingsUSD/1000)
		fmt.Printf("  placement: in-wake -%.1f%% (%.1f K swing) vs central/bulk -%.1f%% (%.1f K swing)\n",
			pl.WakeReduction*100, pl.WakeSwingK, pl.BulkReduction*100, pl.BulkSwingK)
	}
	return nil
}

func runCheck(s *core.Study, _ string) error {
	fmt.Println("== Self-check: measured vs paper (acceptance band 0.5x-2x) ==")
	bundle, err := s.CollectResults()
	if err != nil {
		return err
	}
	rows, allOK := bundle.SelfCheck()
	for _, r := range rows {
		mark := "ok  "
		if !r.OK {
			mark = "FAIL"
		}
		fmt.Printf("  [%s] %-40s measured %10.3f | paper %10.3f\n", mark, r.Name, r.Measured, r.Paper)
	}
	if !allOK {
		return fmt.Errorf("self-check found out-of-band results")
	}
	fmt.Println("all headline quantities within band")
	return nil
}
