// Command ttsim runs the thermal time shifting experiments and prints the
// rows and series the paper reports.
//
// Usage:
//
//	ttsim -exp table1|fig4|fig7|fig10|fig11|fig12|table2|tco|extensions|fleet|faults|autoscale|scenario|all
//	      [-csv dir] [-optimize] [-json file]
//	      [-fleet] [-fleet.mix 1U=13,2U=10,OCP=4] [-fleet.policy all] [-fleet.workers n]
//	      [-faults peak|scenario-name|scenario-file] [-faults.seed n] [-faults.step s]
//	      [-autoscale] [-autoscale.mix 1U=8] [-autoscale.policy all] [-autoscale.scenario names]
//	      [-scenario corpus-name|scenario-file]
//	      [-metrics file] [-trace file] [-trace.chrome file] [-pprof addr]
//
// -exp also accepts a comma-separated list (e.g. -exp fig11,fig12);
// experiments always run in the canonical order above, deduplicated.
// -csv writes every series the experiment produces into the directory as
// time,value CSV files. -optimize runs the melting-temperature search
// instead of using the calibrated per-machine defaults.
//
// Fleet mode (-fleet, or -exp fleet) runs the heterogeneous-fleet
// simulator: racks of mixed machine classes balanced by one or more
// policies (roundrobin, leastloaded, thermal, faultaware), stepped in
// parallel across -fleet.workers workers. -fleet.mix sets the rack
// populations; prefix a class tag with "nowax:" to strip that slice's PCM
// retrofit.
//
// Faults mode (-faults, or -exp faults) replays a fault scenario —
// chiller trips, fan and capacity degradation, sensor faults, demand
// surges — against the fleet with and without wax, reporting the
// ride-through before inlet-triggered throttling and the work shed.
// "-faults peak" injects the default chiller trip as the trace climbs to
// its daily peak; a built-in scenario name (chiller-trip-peak,
// diurnal-surge, rolling-brownout) replays that embedded scenario; any
// other value is a scenario file (see examples/scenarios). -faults.seed
// generates a stochastic scenario instead; -faults.step refines the
// transient's time step. The fleet shape comes from the -fleet.* flags.
// An interrupt (Ctrl-C) cancels the run cleanly at the next simulation
// epoch.
//
// Autoscale mode (-autoscale, or -exp autoscale) closes the control loop:
// the wax-headroom autoscaler rides inside the fleet epoch loop and is
// evaluated head to head against the open-loop balancers on the named
// fault scenarios, tabulating what every arm paid in throttled and shed
// server-seconds. -autoscale.mix sets the rack populations (default an
// all-wax 1U=8 floor — the named scenarios address racks 0-7);
// -autoscale.policy picks the controller decision policies (threshold,
// hysteresis, prefreeze, or all); -autoscale.scenario picks the embedded
// scenarios replayed (default chiller-trip-peak,diurnal-surge).
//
// Scenario mode (-scenario, or -exp scenario) runs one self-contained
// scenario description — a single file that names the composed workload
// (diurnal/weekly/flat/trace base plus spike, surge and season
// components), the fleet mix, the balancing policy, an optional
// closed-loop autoscale policy, and a fault schedule — and contrasts the
// run as written against the same fleet with the wax retrofit stripped
// and the loop open. "-scenario <name>" replays an embedded corpus entry
// (see `internal/scenario` or examples/scenarios); any other value is a
// scenario file path. With no value, -exp scenario replays
// diurnal-baseline.
//
// Telemetry: -metrics writes the run's counters, gauges, histograms and
// spans as JSON; -trace writes the simulation event log (PCM phase
// transitions, solver convergence) as JSON Lines; -trace.chrome writes
// the span tree in Chrome trace-event JSON, loadable in Perfetto
// (ui.perfetto.dev) or chrome://tracing; -pprof serves the stdlib
// net/http/pprof profiles plus a plain-text /metrics page on the given
// address for the duration of the run.
//
// Exit codes: 0 success; 1 an experiment failed; 2 usage (bad flags or
// experiment names — usage goes to stderr); 3 the pprof listener could
// not bind; 4 the -json bundle could not be produced or written; 5 the
// -metrics file could not be written; 6 the -trace file could not be
// written; 7 the -trace.chrome file could not be written; 130
// interrupted.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"

	"repro/internal/autoscale"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/fleet"
	"repro/internal/obs"
	"repro/internal/pcm"
	"repro/internal/report"
	"repro/internal/scenario"
	"repro/internal/tco"
	"repro/internal/timeseries"
)

// Exit codes, one per failure route.
const (
	exitOK        = 0
	exitRunFailed = 1
	exitUsage     = 2
	exitPprof     = 3
	exitBundle    = 4
	exitMetrics   = 5
	exitTrace     = 6
	exitChrome    = 7
	exitInterrupt = 130
)

// experimentOrder is the canonical run order; -exp lists are replayed in
// this order regardless of how the user wrote them.
var experimentOrder = []string{
	"table1", "fig4", "fig7", "fig10", "fig11", "fig12",
	"table2", "tco", "extensions", "fleet", "faults", "autoscale", "scenario", "waxsweep", "check",
}

var runners = map[string]func(context.Context, *core.Study, string, io.Writer) error{
	"table1":     runTable1,
	"fig4":       runFig4,
	"fig7":       runFig7,
	"fig10":      runFig10,
	"fig11":      runFig11,
	"fig12":      runFig12,
	"table2":     runTable2,
	"tco":        runTCO,
	"extensions": runExtensions,
	"fleet":      runFleet,
	"faults":     runFaults,
	"autoscale":  runAutoscale,
	"scenario":   runScenario,
	"waxsweep":   runWaxSweep,
	"check":      runCheck,
}

// fleetSpec carries the -fleet.* flags into the fleet runner.
var fleetSpec = core.DefaultFleetSpec()

// faultSpec carries the -faults flags into the faults runner.
var faultSpec = core.DefaultFaultSpec()

// autoscaleSpec carries the -autoscale.* flags into the autoscale runner.
var autoscaleSpec = core.DefaultAutoscaleSpec()

// scenarioSpec carries the -scenario flag into the scenario runner.
var scenarioSpec core.ScenarioSpec

func main() {
	os.Exit(run(context.Background(), os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with its exits turned into return codes so tests can drive
// every route. Each failure path returns a distinct code (see the
// constants above).
func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("ttsim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	exp := fs.String("exp", "all", "experiment (or comma-separated list): table1, fig4, fig7, fig10, fig11, fig12, table2, tco, extensions, waxsweep, check, or all")
	csvDir := fs.String("csv", "", "directory to write series CSVs into")
	jsonPath := fs.String("json", "", "write a machine-readable results bundle to this file")
	optimize := fs.Bool("optimize", false, "search melting temperatures instead of using calibrated defaults")
	metricsPath := fs.String("metrics", "", "write telemetry (counters, histograms, spans) as JSON to this file")
	tracePath := fs.String("trace", "", "write the simulation event log as JSON Lines to this file")
	chromePath := fs.String("trace.chrome", "", "write the span tree as Chrome trace-event JSON (Perfetto / chrome://tracing) to this file")
	pprofAddr := fs.String("pprof", "", "serve net/http/pprof and /metrics on this address (e.g. localhost:6060) while running")
	fleetMode := fs.Bool("fleet", false, "run the heterogeneous-fleet experiment (alone, or added to an explicit -exp list)")
	fleetMix := fs.String("fleet.mix", "1U=13,2U=10,OCP=4", "fleet rack mix as tag=racks pairs; prefix a tag with nowax: to strip the retrofit")
	fleetPolicies := fs.String("fleet.policy", "all", "comma-separated balancing policies: roundrobin, leastloaded, thermal, faultaware, or all")
	fleetWorkers := fs.Int("fleet.workers", 0, "fleet stepping workers (0 = one per CPU)")
	faultsFlag := fs.String("faults", "", "run the fault-injection experiment: 'peak' for the default chiller-trip-at-peak scenario, a built-in scenario name, or a scenario file path")
	faultsSeed := fs.Int64("faults.seed", 0, "generate a stochastic fault scenario from this seed instead of the default trip (ignored when -faults names a file)")
	faultsStep := fs.Float64("faults.step", 0, "fault-transient simulation step in seconds (0 = 60)")
	autoMode := fs.Bool("autoscale", false, "run the closed-loop autoscaler experiment (alone, or added to an explicit -exp list)")
	autoMix := fs.String("autoscale.mix", "", "autoscale rack mix as tag=racks pairs (default 1U=8, all wax)")
	autoPolicies := fs.String("autoscale.policy", "all", "comma-separated controller decision policies: threshold, hysteresis, prefreeze, or all")
	autoScenarios := fs.String("autoscale.scenario", "", "comma-separated embedded fault scenarios (default chiller-trip-peak,diurnal-surge)")
	scenarioFlag := fs.String("scenario", "", "run the scenario experiment: an embedded corpus name (e.g. diurnal-baseline) or a scenario file path")
	if err := fs.Parse(args); err != nil {
		// flag already printed the problem and the usage to stderr.
		return exitUsage
	}

	spec := *exp
	expSet := false
	fs.Visit(func(f *flag.Flag) { expSet = expSet || f.Name == "exp" })
	// -fleet or -faults alone means just that experiment; with an explicit
	// -exp they append to the list instead.
	var extra []string
	if *fleetMode {
		extra = append(extra, "fleet")
	}
	if *faultsFlag != "" {
		extra = append(extra, "faults")
	}
	if *autoMode {
		extra = append(extra, "autoscale")
	}
	if *scenarioFlag != "" {
		extra = append(extra, "scenario")
	}
	if len(extra) > 0 {
		if expSet {
			spec += "," + strings.Join(extra, ",")
		} else {
			spec = strings.Join(extra, ",")
		}
	}
	names, err := selectExperiments(spec, experimentOrder)
	if err != nil {
		fmt.Fprintln(stderr, "ttsim:", err)
		fs.Usage()
		return exitUsage
	}
	if fleetSpec, err = parseFleetFlags(*fleetMix, *fleetPolicies, *fleetWorkers); err != nil {
		fmt.Fprintln(stderr, "ttsim:", err)
		fs.Usage()
		return exitUsage
	}
	if faultSpec, err = parseFaultFlags(*faultsFlag, *faultsSeed, *faultsStep, *fleetMix, *fleetPolicies, *fleetWorkers); err != nil {
		fmt.Fprintln(stderr, "ttsim:", err)
		fs.Usage()
		return exitUsage
	}
	if autoscaleSpec, err = parseAutoscaleFlags(*autoMix, *autoPolicies, *autoScenarios, *fleetWorkers); err != nil {
		fmt.Fprintln(stderr, "ttsim:", err)
		fs.Usage()
		return exitUsage
	}
	if scenarioSpec, err = parseScenarioFlags(*scenarioFlag, *fleetWorkers); err != nil {
		fmt.Fprintln(stderr, "ttsim:", err)
		fs.Usage()
		return exitUsage
	}

	// Interrupts cancel the in-flight experiment at its next epoch
	// boundary instead of killing the process mid-write.
	ctx, stop := signal.NotifyContext(ctx, os.Interrupt, syscall.SIGTERM)
	defer stop()

	study := core.NewStudy()
	study.OptimizeMelt = *optimize

	var reg *obs.Registry
	if *metricsPath != "" || *tracePath != "" || *chromePath != "" || *pprofAddr != "" {
		reg = obs.New()
		study.Observe(reg)
	}
	if *chromePath != "" {
		// Span capture must be armed before the first experiment starts;
		// 0 selects the default trace capacity.
		reg.EnableSpanTrace(0)
	}
	if *pprofAddr != "" {
		if err := servePprof(*pprofAddr, reg, stderr); err != nil {
			fmt.Fprintln(stderr, "ttsim:", err)
			return exitPprof
		}
	}

	for _, name := range names {
		sp := reg.StartSpan("experiment/" + name)
		err := runners[name](ctx, study, *csvDir, stdout)
		sp.End()
		if err != nil {
			code := exitRunFailed
			if ctx.Err() != nil {
				err = fmt.Errorf("interrupted (%w)", ctx.Err())
				code = exitInterrupt
			}
			fmt.Fprintf(stderr, "ttsim: %s: %v\n", name, err)
			return code
		}
		fmt.Fprintln(stdout)
	}

	// The bundle is written after the experiments so CollectResults reuses
	// the study's cached results instead of re-simulating.
	if *jsonPath != "" {
		bundle, err := study.CollectResults()
		if err != nil {
			fmt.Fprintln(stderr, "ttsim:", err)
			return exitBundle
		}
		if err := writeFile(*jsonPath, bundle.WriteJSON); err != nil {
			fmt.Fprintln(stderr, "ttsim:", err)
			return exitBundle
		}
		fmt.Fprintf(stdout, "results bundle written to %s\n", *jsonPath)
	}
	if *metricsPath != "" {
		if err := writeFile(*metricsPath, reg.WriteJSON); err != nil {
			fmt.Fprintln(stderr, "ttsim:", err)
			return exitMetrics
		}
		fmt.Fprintf(stdout, "metrics written to %s\n", *metricsPath)
	}
	if *tracePath != "" {
		if err := writeFile(*tracePath, reg.Events().WriteJSONL); err != nil {
			fmt.Fprintln(stderr, "ttsim:", err)
			return exitTrace
		}
		fmt.Fprintf(stdout, "trace written to %s\n", *tracePath)
	}
	if *chromePath != "" {
		if err := writeFile(*chromePath, reg.WriteChromeTrace); err != nil {
			fmt.Fprintln(stderr, "ttsim:", err)
			return exitChrome
		}
		fmt.Fprintf(stdout, "chrome trace written to %s (open in ui.perfetto.dev)\n", *chromePath)
	}
	return exitOK
}

// selectExperiments parses a comma-separated -exp value against the
// canonical order. "all" (alone or in a list) expands to every
// experiment. Duplicates collapse, the result follows the canonical
// order, and every unknown name is reported in a single error.
func selectExperiments(spec string, order []string) ([]string, error) {
	want := make(map[string]bool)
	var unknown []string
	for _, part := range strings.Split(spec, ",") {
		name := strings.TrimSpace(part)
		switch {
		case name == "":
			continue
		case name == "all":
			for _, n := range order {
				want[n] = true
			}
		case runners[name] != nil:
			want[name] = true
		default:
			unknown = append(unknown, fmt.Sprintf("%q", name))
		}
	}
	if len(unknown) > 0 {
		return nil, fmt.Errorf("unknown experiment(s) %s (want one of %s, all)",
			strings.Join(unknown, ", "), strings.Join(order, ", "))
	}
	if len(want) == 0 {
		return nil, fmt.Errorf("no experiments selected (want one of %s, all)", strings.Join(order, ", "))
	}
	var names []string
	for _, n := range order {
		if want[n] {
			names = append(names, n)
		}
	}
	return names, nil
}

// servePprof binds addr synchronously (so bad addresses fail the run) and
// serves the default mux -- which net/http/pprof registered into -- plus a
// plain-text metrics page, in the background.
func servePprof(addr string, reg *obs.Registry, stderr io.Writer) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("pprof listen: %w", err)
	}
	http.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if err := reg.WriteText(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	fmt.Fprintf(stderr, "ttsim: pprof on http://%s/debug/pprof/ (metrics on /metrics)\n", ln.Addr())
	go func() {
		if err := http.Serve(ln, nil); err != nil {
			fmt.Fprintln(stderr, "ttsim: pprof server:", err)
		}
	}()
	return nil
}

// writeFile creates path, streams write into it, and reports Close
// failures (a buffered flush error is a real write error).
func writeFile(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func writeCSV(dir, name string, s *timeseries.Series, header string) error {
	if dir == "" || s == nil {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	return writeFile(filepath.Join(dir, name+".csv"), func(w io.Writer) error {
		return s.WriteCSV(w, header)
	})
}

func runTable1(_ context.Context, _ *core.Study, _ string, out io.Writer) error {
	fmt.Fprint(out, report.Table1(pcm.DatacenterCriteria(), pcm.Families()))
	comm, err := pcm.CommercialParaffin(50)
	if err != nil {
		return err
	}
	fmt.Fprintln(out)
	fmt.Fprint(out, report.CostComparison(pcm.Eicosane(), comm, 1.2*55*1008))
	return nil
}

func runFig4(_ context.Context, s *core.Study, csvDir string, out io.Writer) error {
	v, err := s.RunValidation()
	if err != nil {
		return err
	}
	fmt.Fprint(out, report.Validation(v))
	for name, tr := range map[string]*timeseries.Series{
		"fig4_real_wax": v.RealWax, "fig4_real_placebo": v.RealPlacebo,
		"fig4_model_wax": v.ModelWax, "fig4_model_placebo": v.ModelPlacebo,
	} {
		if err := writeCSV(csvDir, name, tr, "near_box_degC"); err != nil {
			return err
		}
	}
	return nil
}

func runFig7(_ context.Context, s *core.Study, csvDir string, out io.Writer) error {
	res, err := s.RunBlockageSweeps()
	if err != nil {
		return err
	}
	fmt.Fprint(out, report.Sweeps(res))
	if csvDir != "" {
		for _, r := range res {
			outlet := make([]float64, len(r.Points))
			for i, p := range r.Points {
				outlet[i] = p.OutletC
			}
			tr, err := timeseries.FromValues(0, 0.1, outlet)
			if err != nil {
				return err
			}
			name := "fig7_" + strings.Fields(r.Class.String())[0]
			if err := writeCSV(csvDir, name, tr, "outlet_degC_vs_blockage"); err != nil {
				return err
			}
		}
	}
	return nil
}

func runFig10(_ context.Context, s *core.Study, csvDir string, out io.Writer) error {
	fmt.Fprint(out, report.TraceSummary(s.Trace))
	if csvDir != "" {
		if err := os.MkdirAll(csvDir, 0o755); err != nil {
			return err
		}
		return writeFile(filepath.Join(csvDir, "fig10_trace.csv"), s.Trace.WriteCSV)
	}
	return nil
}

func runFig11(_ context.Context, s *core.Study, csvDir string, out io.Writer) error {
	fmt.Fprintln(out, "== Figure 11 / Section 5.1: cooling load, fully subscribed cooling ==")
	for _, m := range core.Classes {
		r, err := s.RunCoolingStudy(m)
		if err != nil {
			return err
		}
		fmt.Fprintln(out)
		fmt.Fprint(out, report.Cooling(r))
		tag := strings.Fields(m.String())[0]
		if err := writeCSV(csvDir, "fig11_"+tag+"_baseline", r.Baseline, "cooling_W"); err != nil {
			return err
		}
		if err := writeCSV(csvDir, "fig11_"+tag+"_pcm", r.WithPCM, "cooling_W"); err != nil {
			return err
		}
	}
	return nil
}

func runFig12(_ context.Context, s *core.Study, csvDir string, out io.Writer) error {
	fmt.Fprintln(out, "== Figure 12 / Section 5.2: throughput, thermally constrained cooling ==")
	for _, m := range core.Classes {
		r, err := s.RunThroughputStudy(m)
		if err != nil {
			return err
		}
		fmt.Fprintln(out)
		fmt.Fprint(out, report.Throughput(r))
		tag := strings.Fields(m.String())[0]
		for suffix, tr := range map[string]*timeseries.Series{
			"ideal": r.Ideal, "nowax": r.NoWax, "wax": r.WithWax,
		} {
			if err := writeCSV(csvDir, "fig12_"+tag+"_"+suffix, tr, "normalized_throughput"); err != nil {
				return err
			}
		}
	}
	return nil
}

func runTable2(_ context.Context, s *core.Study, _ string, out io.Writer) error {
	fmt.Fprint(out, report.Table2(s.TCO))
	return nil
}

func runTCO(_ context.Context, s *core.Study, _ string, out io.Writer) error {
	fmt.Fprintln(out, "== Section 5 economics summary (10 MW datacenter) ==")
	for _, m := range core.Classes {
		cfg := m.Config()
		sc := core.DefaultScenario(m)
		d := tco.Datacenter{
			CriticalPowerKW: s.CriticalPowerKW,
			Servers:         sc.Clusters * cfg.ClusterSize,
			ServerCostUSD:   cfg.CostUSD,
		}
		annual, err := tco.Annual(s.TCO, d)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "\n%s: %d servers x $%.0f, TCO $%.1fM/yr\n", m, d.Servers, cfg.CostUSD, annual/1e6)
		cool, err := s.RunCoolingStudy(m)
		if err != nil {
			return err
		}
		thr, err := s.RunThroughputStudy(m)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "  smaller cooling system: $%.0fk/yr | +%d servers | retrofit $%.1fM/yr\n",
			cool.AnnualCoolingSavingsUSD/1000, cool.ExtraServers, cool.RetrofitSavingsUSD/1e6)
		fmt.Fprintf(out, "  constrained: +%.0f%% peak throughput -> %.0f%% TCO efficiency improvement\n",
			thr.PeakGain*100, thr.TCOEfficiencyImprovement*100)
	}
	return nil
}

// parseFleetFlags assembles the fleet spec from the -fleet.* flag values.
func parseFleetFlags(mix, policies string, workers int) (core.FleetSpec, error) {
	spec := core.FleetSpec{Workers: workers}
	var err error
	if spec.Mix, err = core.ParseFleetMix(mix); err != nil {
		return spec, err
	}
	if p := strings.TrimSpace(policies); p != "" && p != "all" {
		for _, name := range strings.Split(p, ",") {
			if name = strings.TrimSpace(name); name != "" {
				// Resolve aliases up front so a typo is a usage error
				// (exit 2), not a mid-run failure.
				pol, err := fleet.ParsePolicy(name)
				if err != nil {
					return spec, err
				}
				spec.Policies = append(spec.Policies, pol.Name())
			}
		}
	}
	return spec, nil
}

func runFleet(ctx context.Context, s *core.Study, csvDir string, out io.Writer) error {
	fmt.Fprintln(out, "== Fleet: heterogeneous racks, policy-balanced, sharded execution ==")
	r, err := s.RunFleetStudyContext(ctx, fleetSpec)
	if err != nil {
		return err
	}
	fmt.Fprint(out, report.Fleet(r))
	for _, p := range r.Policies {
		if err := writeCSV(csvDir, "fleet_"+p.Policy, p.CoolingLoadW, "cooling_W"); err != nil {
			return err
		}
	}
	return nil
}

// parseFaultFlags assembles the fault spec. The fleet-shape flags
// (-fleet.mix, -fleet.policy, -fleet.workers) are shared with fleet mode;
// -faults picks the scenario: "peak" (or "default") for the built-in
// chiller trip at the approach to the daily peak, anything else is a
// scenario file parsed by the faults package.
func parseFaultFlags(scenario string, seed int64, stepS float64, mix, policies string, workers int) (core.FaultSpec, error) {
	spec := core.FaultSpec{Workers: workers, Seed: seed, StepS: stepS}
	var err error
	if spec.Mix, err = core.ParseFleetMix(mix); err != nil {
		return spec, err
	}
	if p := strings.TrimSpace(policies); p != "" && p != "all" {
		for _, name := range strings.Split(p, ",") {
			if name = strings.TrimSpace(name); name != "" {
				pol, err := fleet.ParsePolicy(name)
				if err != nil {
					return spec, err
				}
				spec.Policies = append(spec.Policies, pol.Name())
			}
		}
	}
	switch s := strings.TrimSpace(scenario); {
	case s == "" || s == "peak" || s == "default":
		// nil schedule: RunFaultStudy builds the peak trip (or generates
		// from -faults.seed).
	case faults.IsNamed(s):
		// Embedded scenario names resolve before file paths, so the
		// shipped scenarios work without a checkout.
		if spec.Schedule, err = faults.Named(s); err != nil {
			return spec, err
		}
	default:
		f, err := os.Open(scenario)
		if err != nil {
			return spec, err
		}
		defer f.Close()
		if spec.Schedule, err = faults.ParseSchedule(f); err != nil {
			return spec, fmt.Errorf("%s: %w", scenario, err)
		}
	}
	return spec, nil
}

// parseAutoscaleFlags assembles the autoscale spec from the -autoscale.*
// flag values; workers are shared with -fleet.workers. Policy and
// scenario names are resolved up front so a typo is a usage error (exit
// 2), not a mid-run failure.
func parseAutoscaleFlags(mix, policies, scenarios string, workers int) (core.AutoscaleSpec, error) {
	spec := core.DefaultAutoscaleSpec()
	spec.Workers = workers
	var err error
	if strings.TrimSpace(mix) != "" {
		if spec.Mix, err = core.ParseFleetMix(mix); err != nil {
			return spec, err
		}
	}
	if p := strings.TrimSpace(policies); p != "" && p != "all" {
		for _, name := range strings.Split(p, ",") {
			if name = strings.TrimSpace(name); name != "" {
				pol, err := autoscale.ParsePolicy(name)
				if err != nil {
					return spec, err
				}
				spec.Closed = append(spec.Closed, pol.Name())
			}
		}
	}
	for _, name := range strings.Split(scenarios, ",") {
		if name = strings.TrimSpace(name); name != "" {
			if !faults.IsNamed(name) {
				return spec, fmt.Errorf("unknown fault scenario %q (want one of %s)",
					name, strings.Join(faults.Scenarios(), ", "))
			}
			spec.Scenarios = append(spec.Scenarios, name)
		}
	}
	return spec, nil
}

// parseScenarioFlags resolves the -scenario value. Embedded corpus
// names resolve before file paths (so the shipped scenarios work without
// a checkout); anything else is read and parsed as a scenario file. An
// empty value leaves Scenario nil, which the study resolves to the
// diurnal-baseline corpus entry — that keeps "-exp scenario" with no
// flag meaningful.
func parseScenarioFlags(nameOrPath string, workers int) (core.ScenarioSpec, error) {
	spec := core.ScenarioSpec{Workers: workers}
	switch s := strings.TrimSpace(nameOrPath); {
	case s == "":
	case scenario.IsNamed(s):
		sc, err := scenario.Named(s)
		if err != nil {
			return spec, err
		}
		spec.Name, spec.Scenario = s, sc
	default:
		f, err := os.Open(s)
		if err != nil {
			return spec, err
		}
		defer f.Close()
		sc, err := scenario.Parse(f)
		if err != nil {
			return spec, fmt.Errorf("%s: %w", s, err)
		}
		base := strings.TrimSuffix(filepath.Base(s), filepath.Ext(s))
		spec.Name, spec.Scenario = base, sc
	}
	return spec, nil
}

func runScenario(ctx context.Context, s *core.Study, csvDir string, out io.Writer) error {
	fmt.Fprintln(out, "== Scenario: one file describes the workload, fleet, faults and policy ==")
	r, err := s.RunScenarioStudy(ctx, scenarioSpec)
	if err != nil {
		return err
	}
	fmt.Fprint(out, report.Scenario(r))
	name := "scenario_" + strings.ReplaceAll(r.Name, "/", "_")
	if err := writeCSV(csvDir, name+"_wax_inlet_rise", r.Wax.InletRiseC, "inlet_rise_degC"); err != nil {
		return err
	}
	if err := writeCSV(csvDir, name+"_nowax_inlet_rise", r.NoWax.InletRiseC, "inlet_rise_degC"); err != nil {
		return err
	}
	if err := writeCSV(csvDir, name+"_wax_cooling_load", r.Wax.CoolingLoadW, "cooling_load_w"); err != nil {
		return err
	}
	return writeCSV(csvDir, name+"_nowax_cooling_load", r.NoWax.CoolingLoadW, "cooling_load_w")
}

func runAutoscale(ctx context.Context, s *core.Study, csvDir string, out io.Writer) error {
	fmt.Fprintln(out, "== Autoscale: closed-loop wax-headroom control vs static policies ==")
	r, err := s.RunAutoscaleStudy(ctx, autoscaleSpec)
	if err != nil {
		return err
	}
	fmt.Fprint(out, report.Autoscale(r))
	for _, sc := range r.Scenarios {
		for _, a := range sc.Arms {
			name := "autoscale_" + sc.Scenario + "_" + strings.ReplaceAll(a.Name, "/", "_")
			if err := writeCSV(csvDir, name+"_inlet_rise", a.InletRiseC, "inlet_rise_degC"); err != nil {
				return err
			}
		}
	}
	return nil
}

func runFaults(ctx context.Context, s *core.Study, csvDir string, out io.Writer) error {
	fmt.Fprintln(out, "== Faults: injected failures, graceful degradation, ride-through ==")
	r, err := s.RunFaultStudy(ctx, faultSpec)
	if err != nil {
		return err
	}
	fmt.Fprint(out, report.Faults(r))
	for _, p := range r.Policies {
		if err := writeCSV(csvDir, "faults_"+p.Policy+"_inlet_rise", p.InletRiseC, "inlet_rise_degC"); err != nil {
			return err
		}
	}
	return nil
}

func runWaxSweep(_ context.Context, s *core.Study, _ string, out io.Writer) error {
	fmt.Fprintln(out, "== Sensitivity: peak cooling reduction vs wax quantity ==")
	for _, m := range core.Classes {
		pts, err := s.WaxQuantitySweep(m, []float64{0.25, 0.5, 1, 1.5, 2})
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "\n%s:\n", m)
		for _, p := range pts {
			bar := ""
			for i := 0; i < int(p.PeakReduction*200+0.5); i++ {
				bar += "#"
			}
			fmt.Fprintf(out, "  %5.2f l  -%4.1f%%  %s\n", p.WaxLiters, p.PeakReduction*100, bar)
		}
	}
	fmt.Fprintln(out)
	fmt.Fprintln(out, "the paper: \"the more wax that is added to a server, the greater the")
	fmt.Fprintln(out, "potential savings\" -- up to the design point; past it the oversized,")
	fmt.Fprintln(out, "tightly-coupled store melts early and releases into the shoulder.")
	return nil
}

func runExtensions(_ context.Context, s *core.Study, _ string, out io.Writer) error {
	fmt.Fprintln(out, "== Extensions: storage alternatives and night advantages ==")
	for _, m := range core.Classes {
		cw, err := s.CompareChilledWater(m)
		if err != nil {
			return err
		}
		comp, err := s.RunComplementarity(m)
		if err != nil {
			return err
		}
		night, err := s.RunNightAdvantages(m)
		if err != nil {
			return err
		}
		em, err := s.RunEmergencyRideThrough(m, core.DefaultEmergency())
		if err != nil {
			return err
		}
		rel, err := s.RunRelocationStudy(m, core.DefaultRelocation())
		if err != nil {
			return err
		}
		pl, err := s.ComparePlacement(m)
		if err != nil {
			return err
		}
		fmt.Fprintln(out)
		fmt.Fprint(out, report.Extensions(cw, comp, night))
		fmt.Fprintf(out, "  chiller-trip ride-through: %.1f min -> %.1f min (+%.1f min from the wax)\n",
			em.RideThroughNoWaxMin, em.RideThroughWithWaxMin, em.ExtensionMin)
		fmt.Fprintf(out, "  constrained-peak relocation: %.0f -> %.0f server-h/day shipped out ($%.0fk/yr saved)\n",
			rel.RelocatedNoWax, rel.RelocatedWithWax, rel.AnnualSavingsUSD/1000)
		fmt.Fprintf(out, "  placement: in-wake -%.1f%% (%.1f K swing) vs central/bulk -%.1f%% (%.1f K swing)\n",
			pl.WakeReduction*100, pl.WakeSwingK, pl.BulkReduction*100, pl.BulkSwingK)
	}
	return nil
}

func runCheck(_ context.Context, s *core.Study, _ string, out io.Writer) error {
	fmt.Fprintln(out, "== Self-check: measured vs paper (acceptance band 0.5x-2x) ==")
	bundle, err := s.CollectResults()
	if err != nil {
		return err
	}
	rows, allOK := bundle.SelfCheck()
	for _, r := range rows {
		mark := "ok  "
		if !r.OK {
			mark = "FAIL"
		}
		fmt.Fprintf(out, "  [%s] %-40s measured %10.3f | paper %10.3f\n", mark, r.Name, r.Measured, r.Paper)
	}
	if !allOK {
		return fmt.Errorf("self-check found out-of-band results")
	}
	fmt.Fprintln(out, "all headline quantities within band")
	return nil
}
