package main

import (
	"bytes"
	"context"
	"strings"
	"testing"
)

// TestExitCodes drives every failure route through run and checks each
// returns its own distinct code.
func TestExitCodes(t *testing.T) {
	if testing.Short() {
		t.Skip("runs experiments")
	}
	cases := []struct {
		name string
		args []string
		want int
		// stderrHas must appear in the diagnostics (empty skips the check).
		stderrHas string
	}{
		{"ok", []string{"-exp", "table2"}, exitOK, ""},
		{"bad flag", []string{"-no-such-flag"}, exitUsage, "Usage of ttsim"},
		{"unknown experiment", []string{"-exp", "bogus"}, exitUsage, "unknown experiment"},
		{"bad fleet mix", []string{"-exp", "fleet", "-fleet.mix", "8U=2"}, exitUsage, ""},
		{"bad fleet policy", []string{"-exp", "fleet", "-fleet.policy", "bogus"}, exitUsage, ""},
		{"missing scenario file", []string{"-faults", "/no/such/scenario"}, exitUsage, ""},
		{"csv write failure", []string{"-exp", "fig10", "-csv", "/dev/null/x"}, exitRunFailed, "fig10"},
		{"pprof bind failure", []string{"-exp", "table2", "-pprof", "localhost:99999"}, exitPprof, "pprof listen"},
		{"bundle write failure", []string{"-exp", "table2", "-json", "/dev/null/x/bundle.json"}, exitBundle, ""},
		{"metrics write failure", []string{"-exp", "table2", "-metrics", "/dev/null/x/m.json"}, exitMetrics, ""},
		{"trace write failure", []string{"-exp", "table2", "-trace", "/dev/null/x/t.jsonl"}, exitTrace, ""},
		{"chrome trace write failure", []string{"-exp", "table2", "-trace.chrome", "/dev/null/x/t.json"}, exitChrome, ""},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			got := run(context.Background(), c.args, &stdout, &stderr)
			if got != c.want {
				t.Fatalf("run(%v) = %d, want %d\nstderr: %s", c.args, got, c.want, stderr.String())
			}
			if c.stderrHas != "" && !strings.Contains(stderr.String(), c.stderrHas) {
				t.Errorf("stderr %q does not mention %q", stderr.String(), c.stderrHas)
			}
		})
	}
}

// TestExitInterrupted checks a cancelled context turns an experiment
// failure into the interrupt code.
func TestExitInterrupted(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var stdout, stderr bytes.Buffer
	if got := run(ctx, []string{"-exp", "fleet"}, &stdout, &stderr); got != exitInterrupt {
		t.Fatalf("run with cancelled context = %d, want %d\nstderr: %s", got, exitInterrupt, stderr.String())
	}
	if !strings.Contains(stderr.String(), "interrupted") {
		t.Errorf("stderr %q does not mention the interrupt", stderr.String())
	}
}

// TestUsageGoesToStderr pins the contract that flag-parse failures print
// usage to stderr, not stdout.
func TestUsageGoesToStderr(t *testing.T) {
	var stdout, stderr bytes.Buffer
	run(context.Background(), []string{"-definitely-not-a-flag"}, &stdout, &stderr)
	if stdout.Len() != 0 {
		t.Errorf("stdout not empty on usage error: %q", stdout.String())
	}
	if !strings.Contains(stderr.String(), "-exp") {
		t.Errorf("stderr %q does not list the flags", stderr.String())
	}
}
