package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/timeseries"
)

func TestWriteCSV(t *testing.T) {
	dir := t.TempDir()
	s, err := timeseries.FromValues(0, 60, []float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := writeCSV(dir, "probe", s, "value"); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "probe.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Fatal("empty CSV written")
	}
	// No-ops: empty dir or nil series.
	if err := writeCSV("", "probe", s, "value"); err != nil {
		t.Error(err)
	}
	if err := writeCSV(dir, "nil", nil, "value"); err != nil {
		t.Error(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "nil.csv")); !os.IsNotExist(err) {
		t.Error("nil series produced a file")
	}
}

func TestRunnersProduceCSVs(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment runs")
	}
	dir := t.TempDir()
	study := core.NewStudy()

	if err := runFig10(study, dir); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "fig10_trace.csv")); err != nil {
		t.Error("fig10 CSV missing")
	}

	if err := runFig11(study, dir); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"fig11_1U_baseline.csv", "fig11_1U_pcm.csv", "fig11_Open_baseline.csv"} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Errorf("missing %s", name)
		}
	}

	if err := runFig12(study, dir); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"fig12_2U_ideal.csv", "fig12_2U_nowax.csv", "fig12_2U_wax.csv"} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Errorf("missing %s", name)
		}
	}

	if err := runFig7(study, dir); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "fig7_1U.csv")); err != nil {
		t.Error("fig7 CSV missing")
	}
}

func TestTextOnlyRunners(t *testing.T) {
	study := core.NewStudy()
	if err := runTable1(study, ""); err != nil {
		t.Error(err)
	}
	if err := runTable2(study, ""); err != nil {
		t.Error(err)
	}
}
