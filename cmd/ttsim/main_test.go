package main

import (
	"context"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/timeseries"
)

func TestSelectExperiments(t *testing.T) {
	cases := []struct {
		spec string
		want []string
	}{
		{"all", experimentOrder},
		{"fig4", []string{"fig4"}},
		{"fig12,fig11", []string{"fig11", "fig12"}}, // canonical order wins
		{"fig4,fig4, table1 ", []string{"table1", "fig4"}},
		{"check,all", experimentOrder},
	}
	for _, c := range cases {
		got, err := selectExperiments(c.spec, experimentOrder)
		if err != nil {
			t.Errorf("selectExperiments(%q): %v", c.spec, err)
			continue
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("selectExperiments(%q) = %v, want %v", c.spec, got, c.want)
		}
	}
}

func TestSelectExperimentsErrors(t *testing.T) {
	_, err := selectExperiments("fig4,bogus,fig11,nope", experimentOrder)
	if err == nil {
		t.Fatal("expected error for unknown names")
	}
	for _, name := range []string{`"bogus"`, `"nope"`} {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error %q does not mention %s", err, name)
		}
	}
	if _, err := selectExperiments("", experimentOrder); err == nil {
		t.Error("expected error for empty selection")
	}
	if _, err := selectExperiments(" , ", experimentOrder); err == nil {
		t.Error("expected error for blank list")
	}
}

func TestParseFleetFlags(t *testing.T) {
	spec, err := parseFleetFlags("1U=2,nowax:2U=1", "thermal, rr", 4)
	if err != nil {
		t.Fatal(err)
	}
	wantMix := []core.FleetClass{
		{Class: core.OneU, Racks: 2},
		{Class: core.TwoU, Racks: 1, NoWax: true},
	}
	if !reflect.DeepEqual(spec.Mix, wantMix) {
		t.Errorf("mix = %+v, want %+v", spec.Mix, wantMix)
	}
	// Aliases resolve to canonical names at parse time.
	if !reflect.DeepEqual(spec.Policies, []string{"thermal", "roundrobin"}) {
		t.Errorf("policies = %v", spec.Policies)
	}
	if spec.Workers != 4 {
		t.Errorf("workers = %d", spec.Workers)
	}
	// "all" (and blank) mean every built-in policy: nil lets core decide.
	for _, all := range []string{"all", "", "  "} {
		spec, err = parseFleetFlags("OCP=1", all, 0)
		if err != nil {
			t.Fatal(err)
		}
		if spec.Policies != nil {
			t.Errorf("policies for %q = %v, want nil", all, spec.Policies)
		}
	}
	if _, err := parseFleetFlags("8U=2", "all", 0); err == nil {
		t.Error("accepted unknown class tag")
	}
	if _, err := parseFleetFlags("1U=2", "bogus", 0); err == nil {
		t.Error("accepted unknown policy name")
	}
}

func TestWriteFilePropagatesErrors(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.txt")
	if err := writeFile(path, func(w io.Writer) error {
		_, err := io.WriteString(w, "hello")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil || string(data) != "hello" {
		t.Fatalf("read back %q, %v", data, err)
	}
	// Writer failure is propagated and beats the close path.
	wantErr := io.ErrUnexpectedEOF
	if err := writeFile(path, func(io.Writer) error { return wantErr }); err != wantErr {
		t.Errorf("writeFile returned %v, want %v", err, wantErr)
	}
	// Uncreatable path fails.
	if err := writeFile(filepath.Join(dir, "missing", "out.txt"), func(io.Writer) error { return nil }); err == nil {
		t.Error("expected error creating file in missing directory")
	}
}

func TestWriteCSV(t *testing.T) {
	dir := t.TempDir()
	s, err := timeseries.FromValues(0, 60, []float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := writeCSV(dir, "probe", s, "value"); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "probe.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Fatal("empty CSV written")
	}
	// No-ops: empty dir or nil series.
	if err := writeCSV("", "probe", s, "value"); err != nil {
		t.Error(err)
	}
	if err := writeCSV(dir, "nil", nil, "value"); err != nil {
		t.Error(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "nil.csv")); !os.IsNotExist(err) {
		t.Error("nil series produced a file")
	}
}

func TestRunnersProduceCSVs(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment runs")
	}
	dir := t.TempDir()
	study := core.NewStudy()

	if err := runFig10(context.Background(), study, dir, io.Discard); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "fig10_trace.csv")); err != nil {
		t.Error("fig10 CSV missing")
	}

	if err := runFig11(context.Background(), study, dir, io.Discard); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"fig11_1U_baseline.csv", "fig11_1U_pcm.csv", "fig11_Open_baseline.csv"} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Errorf("missing %s", name)
		}
	}

	if err := runFig12(context.Background(), study, dir, io.Discard); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"fig12_2U_ideal.csv", "fig12_2U_nowax.csv", "fig12_2U_wax.csv"} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Errorf("missing %s", name)
		}
	}

	if err := runFig7(context.Background(), study, dir, io.Discard); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "fig7_1U.csv")); err != nil {
		t.Error("fig7 CSV missing")
	}
}

func TestTextOnlyRunners(t *testing.T) {
	study := core.NewStudy()
	if err := runTable1(context.Background(), study, "", io.Discard); err != nil {
		t.Error(err)
	}
	if err := runTable2(context.Background(), study, "", io.Discard); err != nil {
		t.Error(err)
	}
}

// TestChromeTraceExport runs a fast experiment with -trace.chrome and
// checks the output is loadable trace-event JSON containing the
// experiment span.
func TestChromeTraceExport(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.json")
	var stdout, stderr strings.Builder
	if got := run(context.Background(), []string{"-exp", "table2", "-trace.chrome", path}, &stdout, &stderr); got != exitOK {
		t.Fatalf("run = %d\nstderr: %s", got, stderr.String())
	}
	if !strings.Contains(stdout.String(), "chrome trace written to") {
		t.Errorf("stdout %q lacks the chrome trace notice", stdout.String())
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var trace struct {
		TraceEvents []struct {
			Name  string  `json:"name"`
			Phase string  `json:"ph"`
			TsUs  float64 `json:"ts"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(b, &trace); err != nil {
		t.Fatalf("chrome trace is not JSON: %v", err)
	}
	if len(trace.TraceEvents) == 0 {
		t.Fatal("chrome trace has no events")
	}
	var sawSpan, sawMeta bool
	for _, ev := range trace.TraceEvents {
		switch ev.Phase {
		case "X":
			if ev.Name == "experiment/table2" {
				sawSpan = true
			}
		case "M":
			sawMeta = true
		}
	}
	if !sawSpan || !sawMeta {
		t.Errorf("trace lacks the experiment span (%v) or track metadata (%v)", sawSpan, sawMeta)
	}
}
