// Package tts is a from-scratch Go reproduction of "Thermal Time
// Shifting: Leveraging Phase Change Materials to Reduce Cooling Costs in
// Warehouse-Scale Computers" (Skach et al., ISCA 2015).
//
// The package is a thin facade over the implementation packages:
//
//   - internal/pcm — phase change materials, enclosures, melt/freeze state
//   - internal/airflow, internal/thermal — the server heat model that
//     stands in for the paper's ANSYS Icepak simulations
//   - internal/server — the 1U, 2U and Open Compute machines
//   - internal/workload — the synthetic two-day Google-like trace
//   - internal/dcsim — the DCSim-style datacenter simulator
//   - internal/cooling, internal/tco — cooling loads and Table 2 economics
//   - internal/core — one experiment runner per table and figure
//
// Quick start:
//
//	study := tts.NewStudy()
//	result, err := study.RunCoolingStudy(tts.TwoU)
//	// result.Analysis.PeakReduction ~ 0.12-0.14 (the paper's 12%)
//
// The cmd/ttsim CLI prints every table and figure; EXPERIMENTS.md records
// paper-versus-measured values for each.
package tts
