package tts_test

import (
	"fmt"

	tts "repro"
)

// The headline experiment: one call reproduces the paper's Figure 11 for
// the 2U machine. All inputs are seeded, so the output is deterministic.
func ExampleStudy_RunCoolingStudy() {
	study := tts.NewStudy()
	r, err := study.RunCoolingStudy(tts.TwoU)
	if err != nil {
		panic(err)
	}
	fmt.Printf("peak cooling reduction: %.0f%% (paper: 12%%)\n", r.Analysis.PeakReduction*100)
	fmt.Printf("extra servers in 10 MW: %d (paper: 2,920)\n", r.ExtraServers)
	// Output:
	// peak cooling reduction: 14% (paper: 12%)
	// extra servers in 10 MW: 3026 (paper: 2,920)
}

// The thermally constrained experiment: Figure 12 for the 2U machine.
func ExampleStudy_RunThroughputStudy() {
	study := tts.NewStudy()
	r, err := study.RunThroughputStudy(tts.TwoU)
	if err != nil {
		panic(err)
	}
	fmt.Printf("peak throughput gain: +%.0f%% (paper: +69%%)\n", r.PeakGain*100)
	// Output:
	// peak throughput gain: +69% (paper: +69%)
}

// Selecting a wax: the purchasable commercial-paraffin range and the
// Table 1 ranking.
func ExampleCommercialParaffin() {
	wax, err := tts.CommercialParaffin(50)
	if err != nil {
		panic(err)
	}
	fmt.Printf("%s: %.0f J/g latent, $%.0f/ton\n", wax.Class, wax.HeatOfFusion/1000, wax.CostPerTon)
	if _, err := tts.CommercialParaffin(70); err != nil {
		fmt.Println("70 degC: not purchasable")
	}
	// Output:
	// Commercial Paraffins: 200 J/g latent, $1500/ton
	// 70 degC: not purchasable
}

// The workload trace behind every experiment: two days, 50% average load,
// 95% peak.
func ExampleGoogleTwoDay() {
	tr := tts.GoogleTwoDay()
	peak, _ := tr.Total.Peak()
	fmt.Printf("mean %.0f%%, peak %.0f%%\n", tr.Total.Mean()*100, peak*100)
	// Output:
	// mean 50%, peak 95%
}
