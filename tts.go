package tts

import (
	"repro/internal/core"
	"repro/internal/pcm"
	"repro/internal/server"
	"repro/internal/tco"
	"repro/internal/workload"
)

// The facade re-exports the experiment API so downstream users interact
// with one package. The aliases share identity with the implementation
// types, so values flow freely between this package and the internals.

// Study bundles the trace, TCO parameters and facility size for a run of
// the paper's experiments.
type Study = core.Study

// MachineClass selects one of the paper's three server populations.
type MachineClass = core.MachineClass

// The three machine classes of the scale-out study.
const (
	OneU        = core.OneU
	TwoU        = core.TwoU
	OpenCompute = core.OpenCompute
)

// Classes lists the machine classes in the paper's order.
var Classes = core.Classes

// Experiment result types, one per figure.
type (
	// ValidationResult is the Figure 4 / Section 3 outcome.
	ValidationResult = core.ValidationResult
	// SweepResult is one machine's Figure 7 curve.
	SweepResult = core.SweepResult
	// CoolingResult is the Figure 11 / Section 5.1 outcome.
	CoolingResult = core.CoolingResult
	// ThroughputResult is the Figure 12 / Section 5.2 outcome.
	ThroughputResult = core.ThroughputResult
	// MeltOptimum is the melting-temperature search outcome.
	MeltOptimum = core.MeltOptimum
)

// NewStudy returns the paper's default configuration: the two-day
// Google-like trace, Table 2 rates, and a 10 MW facility.
func NewStudy() *Study { return core.NewStudy() }

// OptimizeMeltingTemperature searches the purchasable 40-60 degC range for
// the wax that minimizes a cluster's peak cooling load.
func OptimizeMeltingTemperature(cfg *server.Config, tr *workload.Trace) (*MeltOptimum, error) {
	return core.OptimizeMeltingTemperature(cfg, tr)
}

// ServerConfig returns a fresh configuration for the machine class.
func ServerConfig(m MachineClass) *server.Config { return m.Config() }

// GoogleTwoDay returns the paper's two-day evaluation trace.
func GoogleTwoDay() *workload.Trace { return workload.GoogleTwoDay() }

// CommercialParaffin returns the deployable wax at the given melting
// temperature (40-60 degC).
func CommercialParaffin(meltingPointC float64) (pcm.Material, error) {
	return pcm.CommercialParaffin(meltingPointC)
}

// PCMFamilies returns the paper's Table 1 rows.
func PCMFamilies() []pcm.Material { return pcm.Families() }

// TCOParams returns the paper's Table 2 rates.
func TCOParams() tco.Params { return tco.PaperParams() }
