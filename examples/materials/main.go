// Materials: the Section 2.1 selection walk — score every Table 1 family
// against the datacenter deployment envelope, price the eicosane-versus-
// commercial-paraffin tradeoff at warehouse scale, and run the melting-
// temperature optimizer for each machine.
package main

import (
	"fmt"
	"log"
	"strings"

	tts "repro"
	"repro/internal/pcm"
)

func main() {
	crit := pcm.DatacenterCriteria()

	fmt.Println("Table 1 families against the datacenter envelope (30-60 degC melt,")
	fmt.Println("~1,500 daily cycles, non-corrosive, non-conductive, affordable):")
	for _, m := range crit.Ranked(pcm.Families()) {
		m := m
		reasons := crit.Unsuitability(&m)
		verdict := "SUITABLE"
		if len(reasons) > 0 {
			verdict = strings.Join(reasons, "; ")
		}
		fmt.Printf("  %-28s %s\n", m.Class, verdict)
	}

	// The cost cliff that rules out the sprinting-grade wax.
	eico := pcm.Eicosane()
	comm, err := pcm.CommercialParaffin(50)
	if err != nil {
		log.Fatal(err)
	}
	const liters = 1.2 * 55 * 1008 // 1U fleet of a 10 MW datacenter
	fmt.Printf("\nfilling a 10 MW 1U fleet (%.0f l of wax):\n", liters)
	fmt.Printf("  eicosane:            $%9.0f (%.0f J/g)\n", eico.CostForVolume(liters), eico.HeatOfFusion/1000)
	fmt.Printf("  commercial paraffin: $%9.0f (%.0f J/g)\n", comm.CostForVolume(liters), comm.HeatOfFusion/1000)
	fmt.Printf("  -> %.0fx cheaper for %.0f%% less energy per gram\n",
		eico.CostPerTon/comm.CostPerTon, (1-comm.HeatOfFusion/eico.HeatOfFusion)*100)

	// The within-family knob: which melting temperature to buy.
	fmt.Println("\nmelting-temperature optimization (peak cluster cooling load):")
	trace := tts.GoogleTwoDay()
	for _, m := range tts.Classes {
		cfg := tts.ServerConfig(m)
		opt, err := tts.OptimizeMeltingTemperature(cfg, trace)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-22s best Tm %.2f degC -> -%.1f%% peak cooling (melts above %.0f%% load)\n",
			m, opt.MeltC, opt.PeakReduction*100, opt.MeltOnsetUtilization*100)
	}
}
