// Quickstart: simulate one 2U server with its 4 liters of wax over the
// two-day Google trace and watch the thermal time shifting happen — the
// wax melts through the midday peak (capping the heat the room sees) and
// refreezes overnight.
package main

import (
	"fmt"
	"log"

	tts "repro"
	"repro/internal/dcsim"
	"repro/internal/units"
)

func main() {
	study := tts.NewStudy()
	cfg := tts.ServerConfig(tts.TwoU)

	// A cluster of 1008 servers; the ROM carries the wax melting
	// characteristics derived from the detailed thermal model.
	cluster, err := dcsim.NewCluster(cfg, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %.1f l wax/server, melts at %.1f degC, %.0f kJ latent\n",
		cfg.Name, cluster.ROM.Enclosure.WaxVolume(),
		cluster.ROM.MeltingPointC(), cluster.ROM.LatentCapacity()/1000)

	base, err := cluster.RunCoolingLoad(study.Trace, false)
	if err != nil {
		log.Fatal(err)
	}
	wax, err := cluster.RunCoolingLoad(study.Trace, true)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nhour  util  cooling(kW)  with wax   wax state")
	for h := 0.0; h < 48; h += 2 {
		i := int(h * units.Hour / study.Trace.Total.Step)
		u := study.Trace.Total.Values[i]
		liquid := wax.WaxLiquid.Values[i]
		bar := ""
		for j := 0; j < int(liquid*10+0.5); j++ {
			bar += "#"
		}
		fmt.Printf("%4.0f  %3.0f%%  %10.1f  %9.1f   [%-10s] %3.0f%% molten\n",
			h, u*100, base.CoolingLoadW.Values[i]/1000, wax.CoolingLoadW.Values[i]/1000,
			bar, liquid*100)
	}

	pb, _ := base.CoolingLoadW.Peak()
	pw, _ := wax.CoolingLoadW.Peak()
	fmt.Printf("\npeak cooling load: %.1f kW -> %.1f kW (-%.1f%%)\n",
		pb/1000, pw/1000, (1-pw/pb)*100)
	fmt.Printf("energy time-shifted per day: %.1f kWh per cluster\n",
		units.JoulesToKWh(wax.AbsorbedJ/2))
}
