// Storage wars: the three ways to time-shift a datacenter's peak — passive
// wax inside the servers (this paper), an active chilled-water tank
// outside (TE-Shave and the thermal-storage literature), and UPS batteries
// (the power-capping literature) — compared head-to-head on the same
// cluster, plus the combination the paper's introduction advocates.
package main

import (
	"fmt"
	"log"

	tts "repro"
)

func main() {
	study := tts.NewStudy()

	fmt.Println("2U cluster (1008 servers), two-day Google trace")
	fmt.Println()

	cw, err := study.CompareChilledWater(tts.TwoU)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("peak COOLING load shave, equal stored energy:")
	fmt.Printf("  in-server wax      -%4.1f%%   passive: no power, no floor space, no controls\n",
		cw.WaxReduction*100)
	fmt.Printf("  chilled-water tank -%4.1f%%   %.0f m^3 outdoors (%.0f m^2 pad), %.0f kWh/day pumps,\n",
		cw.TankReduction*100, cw.TankVolumeM3, cw.TankFloorM2, cw.TankPumpKWhPerDay)
	fmt.Printf("                              %.0f kWh/day re-chilling environmental losses\n",
		cw.TankStandingKWhPerDay)
	fmt.Println()
	fmt.Println("the tank shaves a little deeper (no in-chassis volume limit) but pays a")
	fmt.Println("standing bill whether used or not — the paper's Section 6 argument.")

	comp, err := study.RunComplementarity(tts.TwoU)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\npeak GRID draw (IT + cooling plant at COP 3.5):")
	fmt.Printf("  UPS batteries only  -%4.1f%%   (cooling power still peaks with the workload)\n",
		comp.TotalReductionBatteryOnly*100)
	fmt.Printf("  wax only            -%4.1f%%   (IT power still peaks with the workload)\n",
		comp.TotalReductionWaxOnly*100)
	fmt.Printf("  batteries + wax     -%4.1f%%   (both flattened: the tighter total cap)\n",
		comp.TotalReductionCombined*100)

	night, err := study.RunNightAdvantages(tts.TwoU)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nnight-shift side benefits (temperate climate, 7am-7pm peak tariff):")
	fmt.Printf("  free-cooled heat:  %.2f%% -> %.2f%% of the total\n",
		night.FreeFractionBase*100, night.FreeFractionPCM*100)
	fmt.Printf("  chiller bill:      $%.2f -> $%.2f per cluster per two days\n",
		night.TOUCostBaseUSD, night.TOUCostPCMUSD)
}
