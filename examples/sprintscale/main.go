// Sprintscale: the related-work contrast the paper draws in Section 6.
// Computational sprinting puts grams of lab-grade eicosane on a chip to
// absorb a seconds-scale burst; thermal time shifting puts kilograms of
// commercial wax in a server to absorb an hours-scale peak. Same physics,
// five orders of magnitude apart in time and energy.
package main

import (
	"fmt"
	"log"

	"repro/internal/dcsim"
	"repro/internal/pcm"
	"repro/internal/server"
	"repro/internal/sprint"
	"repro/internal/units"
	"repro/internal/workload"
)

func main() {
	// Chip scale: a 15 W-sustainable mobile part sprinting at 50 W.
	chip := sprint.DefaultChip()
	bare, err := chip.Sprint(nil, 600)
	if err != nil {
		log.Fatal(err)
	}
	block, err := sprint.EicosaneBlock(30)
	if err != nil {
		log.Fatal(err)
	}
	boosted, err := chip.Sprint(block, 600)
	if err != nil {
		log.Fatal(err)
	}
	eico := pcm.Eicosane()
	chipCost := eico.CostForVolume(0.030 / eico.DensitySolid * 1000)
	fmt.Println("chip scale (computational sprinting):")
	fmt.Printf("  30 g of eicosane ($%.2f) on a %0.f W-sustainable chip\n", chipCost, chip.SustainableW)
	fmt.Printf("  %.0f W sprint holds %.0f s bare, %.0f s with PCM (+%.0f s, +%.1f kJ of burst)\n",
		chip.SprintW, bare.DurationS, boosted.DurationS,
		boosted.DurationS-bare.DurationS, (boosted.EnergyJ-bare.EnergyJ)/1000)

	// Datacenter scale: the 2U cluster over the two-day trace.
	cfg := server.TwoU()
	cluster, err := dcsim.NewCluster(cfg, 0)
	if err != nil {
		log.Fatal(err)
	}
	tr := workload.GoogleTwoDay()
	base, err := cluster.RunCoolingLoad(tr, false)
	if err != nil {
		log.Fatal(err)
	}
	wax, err := cluster.RunCoolingLoad(tr, true)
	if err != nil {
		log.Fatal(err)
	}
	pb, _ := base.CoolingLoadW.Peak()
	pw, _ := wax.CoolingLoadW.Peak()
	enc := cluster.ROM.Enclosure
	comm := enc.Material
	fmt.Println("\ndatacenter scale (thermal time shifting):")
	fmt.Printf("  %.1f kg of commercial paraffin ($%.2f) per 2U server\n",
		enc.WaxMass(), enc.MaterialCost())
	fmt.Printf("  shifts %.0f kWh/day per 1008-server cluster, shaving the cooling peak %.1f%%\n",
		units.JoulesToKWh(wax.AbsorbedJ/2), (1-pw/pb)*100)

	fmt.Println("\nthe contrast:")
	fmt.Printf("  time scale:   %.0f s sprint vs %.0f h daily cycle (~%.0fx)\n",
		boosted.DurationS, 24.0, 24*units.Hour/boosted.DurationS)
	fmt.Printf("  energy scale: %.1f kJ/chip vs %.0f kJ/server (~%.0fx)\n",
		block.LatentCapacity()/1000, enc.LatentCapacity()/1000,
		enc.LatentCapacity()/block.LatentCapacity())
	fmt.Printf("  material:     eicosane $%.0f/ton vs commercial $%.0f/ton (%.0fx)\n",
		eico.CostPerTon, comm.CostPerTon, eico.CostPerTon/comm.CostPerTon)
	fmt.Println("  and no metal mesh needed at hour scales (see the pcm mesh ablation test)")
}
