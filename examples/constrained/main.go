// Constrained: the Section 5.2 emergency — a datacenter whose cooling
// system can no longer keep up with its servers (denser hardware moved in,
// or colocation pushed utilization up). Without PCM the cluster downclocks
// to 1.6 GHz through the midday peak; with wax it rides the peak at full
// speed for hours.
package main

import (
	"fmt"
	"log"

	tts "repro"
	"repro/internal/units"
)

func main() {
	study := tts.NewStudy()

	for _, m := range tts.Classes {
		r, err := study.RunThroughputStudy(m)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s (cooling limit %.0f kW per cluster)\n", m, r.LimitW/1000)
		fmt.Printf("  peak throughput with wax: +%.0f%% over the downclocked ceiling\n", r.PeakGain*100)
		fmt.Printf("  thermal limit deferred %.1f h per day\n", r.DelayHours)
		fmt.Printf("  TCO efficiency vs buying %.0f%% more machines: +%.0f%%\n\n",
			r.PeakGain*100, r.TCOEfficiencyImprovement*100)

		// A strip chart of day 1: ideal vs no-wax vs with-wax.
		if m == tts.TwoU {
			fmt.Println("  day-1 strip chart (normalized throughput; '.' ideal, 'o' no wax, '#' with wax)")
			for h := 8.0; h <= 20; h++ {
				i := int(h * units.Hour / r.Ideal.Step)
				row := make([]byte, 72)
				for j := range row {
					row[j] = ' '
				}
				put := func(v float64, ch byte) {
					p := int(v / 1.8 * 70)
					if p >= 0 && p < len(row) {
						row[p] = ch
					}
				}
				put(r.Ideal.Values[i], '.')
				put(r.WithWax.Values[i], '#')
				put(r.NoWax.Values[i], 'o')
				fmt.Printf("  %4.0fh |%s|\n", h, row)
			}
			fmt.Println()
		}
	}
	fmt.Println("paper's figures: +33% over 5.1 h (1U), +69% over 3.1 h (2U), +34% over 3.1 h (OCP);")
	fmt.Println("TCO efficiency improvements 23% / 39% / 24%")
}
