// Sizing: the Section 5.1 decision an operator faces when building (or
// re-populating) a 10 MW datacenter with a fully subscribed cooling
// system. For each candidate machine, PCM flattens the peak cooling load;
// the operator can pocket the smaller cooling plant, or spend the headroom
// on more servers, or — in a retrofit — skip the replacement plant
// entirely.
package main

import (
	"fmt"
	"log"

	tts "repro"
)

func main() {
	study := tts.NewStudy()

	fmt.Println("10 MW datacenter, fully subscribed cooling, two-day Google trace")
	fmt.Println()
	fmt.Printf("%-22s %10s %10s %12s %12s %12s\n",
		"machine", "melt degC", "peak red.", "new servers", "$/yr smaller", "$/yr retrofit")

	for _, m := range tts.Classes {
		r, err := study.RunCoolingStudy(m)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s %10.1f %9.1f%% %12d %11.0fk %11.1fM\n",
			m, r.MeltC, r.Analysis.PeakReduction*100,
			r.ExtraServers, r.AnnualCoolingSavingsUSD/1000, r.RetrofitSavingsUSD/1e6)
	}

	fmt.Println("\npaper's figures: 8.9% / 12% / 8.3% reductions;")
	fmt.Println("+4,940 / +2,920 / +2,770 servers; $187k / $254k / $174k; retrofit $3.0-3.2M")

	// The mechanics behind the headline: where the best wax starts
	// melting, and how long the cooling system pays the heat back.
	fmt.Println("\nmechanics:")
	for _, m := range tts.Classes {
		r, err := study.RunCoolingStudy(m)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-22s melts above %2.0f%% load, releases over %.1f h off-peak\n",
			m, r.MeltOnsetUtilization*100, r.Analysis.ResolidifyHours)
	}
}
